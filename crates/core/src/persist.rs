//! Snapshot persistence for uncertain databases.
//!
//! A small self-contained binary format (no external serialization
//! crates), generalized in the durability PR from the original 1-D-only
//! layout to a **versioned, dimension-tagged** family that covers every
//! model the server can host — flat 1-D ([`UncertainDb`]), flat 2-D
//! ([`UncertainDb2d`]), and sharded databases
//! ([`crate::shard::ShardedDb`]), which checkpoint shard-by-shard:
//!
//! ```text
//! header  : magic "CPNN" | format version u32 (= 2) | dim u32
//!           | kind u8 (0 flat, 1 sharded) | snapshot version u64
//! flat    : object count u64 | records
//! sharded : axis u32 | boundary count u32 | boundaries [f64]
//!           | shard count u32 | per shard: object count u64 | records
//! trailer : FNV-1a checksum u64 over everything before it
//!
//! 1-D record: id u64 | bar count u32 | edges [f64] | masses [f64]
//! 2-D record: id u64 | shape u8 (0 circle, 1 rectangle)
//!             | circle: cx f64, cy f64, radius f64
//!             | rectangle: min x, min y, max x, max y (f64 each)
//! ```
//!
//! All integers and floats are little-endian. The `snapshot version`
//! field carries the serving layer's published snapshot version through
//! checkpoints, so a recovered server resumes the citation sequence its
//! clients saw before the crash (see [`crate::storage`]).
//!
//! Version-1 files (the original `magic | version | count | records`
//! layout, implicitly 1-D flat) still load; files from a *future* format
//! version fail with the dedicated [`SnapshotError::UnsupportedVersion`]
//! so callers can distinguish "not a snapshot" from "snapshot from a
//! newer build". Loading re-validates every record through the normal
//! constructors, so a corrupted or hand-edited snapshot can produce a
//! checksum error or a validation error but never a malformed in-memory
//! database.
//!
//! Sharded bodies persist the partition **axis and exact slab
//! boundaries** rather than re-deriving them from the recovered objects:
//! a database whose contents drifted away from the build-time
//! distribution (via the serve lane's inserts/removes) must recover with
//! the *same* routing it had before the crash, bit for bit.

use std::io::{self, Read, Write};

use cpnn_pdf::HistogramPdf;

use crate::engine::{EngineConfig, UncertainDb};
use crate::engine2d::{Engine2dConfig, Object2d, UncertainDb2d};
use crate::error::CoreError;
use crate::object::{ObjectId, UncertainObject};
use crate::shard::{ShardableModel, ShardedDb};
use crate::store::CowModel;

const MAGIC: &[u8; 4] = b"CPNN";
/// Current snapshot format version.
pub const VERSION: u32 = 2;
/// The original 1-D-only layout (no dim/kind/snapshot-version fields).
const LEGACY_VERSION: u32 = 1;

/// `kind` header tag for flat (single-model) bodies.
pub const KIND_FLAT: u8 = 0;
/// `kind` header tag for sharded bodies.
pub const KIND_SHARDED: u8 = 1;

/// Errors specific to snapshot encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot (bad magic), or a malformed/mismatched header.
    BadHeader,
    /// The file is a snapshot, but from a newer format version than this
    /// build understands.
    UnsupportedVersion {
        /// Format version stored in the file.
        found: u32,
        /// Newest format version this build can read.
        supported: u32,
    },
    /// The snapshot's spatial dimension does not match the model being
    /// loaded (e.g. a 2-D checkpoint fed to a 1-D database).
    DimensionMismatch {
        /// Dimension tag stored in the file.
        found: u32,
        /// Dimension the caller's model requires.
        expected: u32,
    },
    /// Trailer checksum mismatch (corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// Payload decoded but failed semantic validation.
    Invalid(CoreError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadHeader => write!(f, "not a cpnn snapshot (bad magic/header)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported ({supported})"
            ),
            SnapshotError::DimensionMismatch { found, expected } => write!(
                f,
                "snapshot is {found}-dimensional, expected {expected}-dimensional"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Invalid(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Convenience: result alias used by callers.
pub type SnapshotResult<T> = std::result::Result<T, SnapshotError>;

/// Incremental FNV-1a (64-bit) — tiny, dependency-free integrity check.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

/// One-shot FNV-1a (64-bit) over a byte slice — the same digest the
/// snapshot trailer uses, exported for the WAL's per-record checksums
/// ([`crate::storage`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.0
}

/// Writer that hashes everything it forwards — the encoding half of the
/// snapshot/WAL wire format. [`finish`](Self::finish) appends the running
/// digest as the little-endian trailer.
pub struct SnapshotWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> SnapshotWriter<W> {
    /// Wrap a sink; all bytes written through `put*` are hashed.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }
    /// Write raw bytes.
    pub fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }
    /// Write a little-endian `u8`.
    pub fn put_u8(&mut self, v: u8) -> io::Result<()> {
        self.put(&[v])
    }
    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
    /// Write a little-endian `f64` (raw IEEE-754 bits — round trips
    /// exactly).
    pub fn put_f64(&mut self, v: f64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
    /// Append the digest trailer (the trailer itself is not hashed) and
    /// return the sink.
    pub fn finish(mut self) -> io::Result<W> {
        let digest = self.hash.0;
        self.inner.write_all(&digest.to_le_bytes())?;
        Ok(self.inner)
    }
    /// Unwrap without writing a trailer (for length-prefixed WAL payloads
    /// whose checksum is computed over the finished buffer instead).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reader that hashes everything it yields — the decoding half of the
/// snapshot/WAL wire format.
pub struct SnapshotReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> SnapshotReader<R> {
    /// Wrap a source; all bytes read through `take*` are hashed.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }
    /// Read exactly `N` raw bytes.
    pub fn take<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let mut buf = [0u8; N];
        self.inner.read_exact(&mut buf)?;
        self.hash.update(&buf);
        Ok(buf)
    }
    /// Read a little-endian `u8`.
    pub fn take_u8(&mut self) -> io::Result<u8> {
        Ok(self.take::<1>()?[0])
    }
    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }
    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
    /// Read a little-endian `f64` (raw IEEE-754 bits).
    pub fn take_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }
    /// Read the (unhashed) trailer and compare it to the running digest.
    pub fn verify_trailer(&mut self) -> SnapshotResult<()> {
        let computed = self.hash.0;
        let mut trailer = [0u8; 8];
        self.inner.read_exact(&mut trailer)?;
        let stored = u64::from_le_bytes(trailer);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok(())
    }
    /// Unwrap, returning the underlying source (for slice readers: the
    /// unconsumed remainder).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// A model that can be checkpointed to and recovered from the snapshot
/// format — the persistence seam the [`crate::storage`] backends and the
/// server's durability hooks are generic over.
///
/// The split between object-level and body-level methods is deliberate:
/// `write_object`/`read_object` serialize **one** record and double as
/// the WAL insert-op payload codec, while `write_body`/`read_body` cover
/// whole-model layout (counts, shard boundaries). Tuning state
/// ([`Context`](Self::Context)) is *not* persisted — recovery composes
/// stored data with caller-supplied configuration, so a snapshot written
/// at 48 distance bins can be reopened at 96.
pub trait PersistentModel: CowModel {
    /// Engine/tuning configuration supplied at load time.
    type Context: Clone;
    /// Spatial dimension tag stamped into snapshot headers.
    const DIM: u32;
    /// Layout kind tag ([`KIND_FLAT`] or [`KIND_SHARDED`]).
    const KIND: u8;

    /// Serialize one object record.
    fn write_object<W: Write>(object: &Self::Object, w: &mut SnapshotWriter<W>) -> io::Result<()>;
    /// Deserialize and re-validate one object record.
    fn read_object<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<Self::Object>;
    /// Serialize the model body (everything between header and trailer).
    fn write_body<W: Write>(&self, w: &mut SnapshotWriter<W>) -> io::Result<()>;
    /// Rebuild the model from a body.
    fn read_body<R: Read>(r: &mut SnapshotReader<R>, ctx: &Self::Context) -> SnapshotResult<Self>;
}

/// Serialize any [`PersistentModel`] with its published snapshot
/// `version` into `w` (header, body, checksum trailer).
pub fn write_model<M: PersistentModel, W: Write>(
    model: &M,
    snapshot_version: u64,
    w: W,
) -> SnapshotResult<()> {
    let mut w = SnapshotWriter::new(w);
    w.put(MAGIC)?;
    w.put_u32(VERSION)?;
    w.put_u32(M::DIM)?;
    w.put_u8(M::KIND)?;
    w.put_u64(snapshot_version)?;
    model.write_body(&mut w)?;
    w.finish()?;
    Ok(())
}

/// Deserialize a [`PersistentModel`] from `r`, returning the model and
/// the snapshot version recorded at checkpoint time. Accepts the current
/// format and (for 1-D flat models) legacy version-1 files, which carry
/// snapshot version 0.
pub fn read_model<M: PersistentModel, R: Read>(r: R, ctx: &M::Context) -> SnapshotResult<(M, u64)> {
    let mut r = SnapshotReader::new(r);
    let format = read_magic_and_version(&mut r)?;
    let snapshot_version = if format == LEGACY_VERSION {
        if M::DIM != 1 || M::KIND != KIND_FLAT {
            return Err(SnapshotError::BadHeader);
        }
        0
    } else {
        let dim = r.take_u32()?;
        if dim != M::DIM {
            return Err(SnapshotError::DimensionMismatch {
                found: dim,
                expected: M::DIM,
            });
        }
        if r.take_u8()? != M::KIND {
            return Err(SnapshotError::BadHeader);
        }
        r.take_u64()?
    };
    let model = M::read_body(&mut r, ctx)?;
    r.verify_trailer()?;
    Ok((model, snapshot_version))
}

/// Serialize any [`PersistentModel`] to a file path (see
/// [`write_model`]).
pub fn write_model_to_path<M: PersistentModel>(
    model: &M,
    snapshot_version: u64,
    path: &std::path::Path,
) -> SnapshotResult<()> {
    let file = std::fs::File::create(path)?;
    write_model(model, snapshot_version, io::BufWriter::new(file))
}

/// Deserialize any [`PersistentModel`] from a file path (see
/// [`read_model`]).
pub fn read_model_from_path<M: PersistentModel>(
    path: &std::path::Path,
    ctx: &M::Context,
) -> SnapshotResult<(M, u64)> {
    let file = std::fs::File::open(path)?;
    read_model(io::BufReader::new(file), ctx)
}

fn read_magic_and_version<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<u32> {
    let magic = r.take::<4>()?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadHeader);
    }
    let version = r.take_u32()?;
    if version == 0 {
        return Err(SnapshotError::BadHeader);
    }
    if version > VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    Ok(version)
}

// ---------------------------------------------------------------------------
// Record codecs
// ---------------------------------------------------------------------------

fn write_object_1d<W: Write>(obj: &UncertainObject, w: &mut SnapshotWriter<W>) -> io::Result<()> {
    let pdf = obj.pdf();
    w.put_u64(obj.id().0)?;
    w.put_u32(pdf.bar_count() as u32)?;
    for &e in pdf.edges() {
        w.put_f64(e)?;
    }
    // Store masses (cdf differences): re-normalization on load is then
    // exact by construction.
    let cdf = pdf.cdf_at_edges();
    for i in 0..pdf.bar_count() {
        w.put_f64(cdf[i + 1] - cdf[i])?;
    }
    Ok(())
}

fn read_object_1d<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<UncertainObject> {
    let id = r.take_u64()?;
    let bars = r.take_u32()? as usize;
    if bars == 0 || bars > 1 << 24 {
        return Err(SnapshotError::BadHeader);
    }
    let mut edges = Vec::with_capacity(bars + 1);
    for _ in 0..=bars {
        edges.push(r.take_f64()?);
    }
    let mut masses = Vec::with_capacity(bars);
    for _ in 0..bars {
        masses.push(r.take_f64()?);
    }
    let pdf =
        HistogramPdf::from_masses(edges, masses).map_err(|e| SnapshotError::Invalid(e.into()))?;
    Ok(UncertainObject::from_histogram(ObjectId(id), pdf))
}

const SHAPE_CIRCLE: u8 = 0;
const SHAPE_RECTANGLE: u8 = 1;

fn write_object_2d<W: Write>(obj: &Object2d, w: &mut SnapshotWriter<W>) -> io::Result<()> {
    w.put_u64(obj.id().0)?;
    match obj {
        Object2d::Circle(c) => {
            w.put_u8(SHAPE_CIRCLE)?;
            w.put_f64(c.center[0])?;
            w.put_f64(c.center[1])?;
            w.put_f64(c.radius)?;
        }
        Object2d::Rectangle { rect, .. } => {
            w.put_u8(SHAPE_RECTANGLE)?;
            w.put_f64(rect.min[0])?;
            w.put_f64(rect.min[1])?;
            w.put_f64(rect.max[0])?;
            w.put_f64(rect.max[1])?;
        }
    }
    Ok(())
}

fn read_object_2d<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<Object2d> {
    let id = ObjectId(r.take_u64()?);
    match r.take_u8()? {
        SHAPE_CIRCLE => {
            let cx = r.take_f64()?;
            let cy = r.take_f64()?;
            let radius = r.take_f64()?;
            Object2d::circle(id, [cx, cy], radius).map_err(SnapshotError::Invalid)
        }
        SHAPE_RECTANGLE => {
            let min = [r.take_f64()?, r.take_f64()?];
            let max = [r.take_f64()?, r.take_f64()?];
            Object2d::rectangle(id, min, max).map_err(SnapshotError::Invalid)
        }
        _ => Err(SnapshotError::BadHeader),
    }
}

fn write_object_list<M: PersistentModel, W: Write>(
    objects: &[M::Object],
    w: &mut SnapshotWriter<W>,
) -> io::Result<()> {
    w.put_u64(objects.len() as u64)?;
    for obj in objects {
        M::write_object(obj, w)?;
    }
    Ok(())
}

fn read_object_list<M: PersistentModel, R: Read>(
    r: &mut SnapshotReader<R>,
) -> SnapshotResult<Vec<M::Object>> {
    let count = r.take_u64()? as usize;
    // Cap pre-allocation: a corrupt count must not OOM us.
    let mut objects = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        objects.push(M::read_object(r)?);
    }
    Ok(objects)
}

// ---------------------------------------------------------------------------
// Model impls
// ---------------------------------------------------------------------------

impl PersistentModel for UncertainDb {
    type Context = EngineConfig;
    const DIM: u32 = 1;
    const KIND: u8 = KIND_FLAT;

    fn write_object<W: Write>(
        object: &UncertainObject,
        w: &mut SnapshotWriter<W>,
    ) -> io::Result<()> {
        write_object_1d(object, w)
    }
    fn read_object<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<UncertainObject> {
        read_object_1d(r)
    }
    fn write_body<W: Write>(&self, w: &mut SnapshotWriter<W>) -> io::Result<()> {
        write_object_list::<Self, W>(&self.objects(), w)
    }
    fn read_body<R: Read>(r: &mut SnapshotReader<R>, ctx: &EngineConfig) -> SnapshotResult<Self> {
        let objects = read_object_list::<Self, R>(r)?;
        UncertainDb::with_config(objects, *ctx).map_err(SnapshotError::Invalid)
    }
}

impl PersistentModel for UncertainDb2d {
    type Context = Engine2dConfig;
    const DIM: u32 = 2;
    const KIND: u8 = KIND_FLAT;

    fn write_object<W: Write>(object: &Object2d, w: &mut SnapshotWriter<W>) -> io::Result<()> {
        write_object_2d(object, w)
    }
    fn read_object<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<Object2d> {
        read_object_2d(r)
    }
    fn write_body<W: Write>(&self, w: &mut SnapshotWriter<W>) -> io::Result<()> {
        write_object_list::<Self, W>(&self.objects(), w)
    }
    fn read_body<R: Read>(r: &mut SnapshotReader<R>, ctx: &Engine2dConfig) -> SnapshotResult<Self> {
        let objects = read_object_list::<Self, R>(r)?;
        UncertainDb2d::with_config(objects, *ctx).map_err(SnapshotError::Invalid)
    }
}

impl<M> PersistentModel for ShardedDb<M>
where
    M: ShardableModel + PersistentModel,
{
    type Context = <M as ShardableModel>::Config;
    const DIM: u32 = M::DIM;
    const KIND: u8 = KIND_SHARDED;

    fn write_object<W: Write>(object: &M::Object, w: &mut SnapshotWriter<W>) -> io::Result<()> {
        M::write_object(object, w)
    }
    fn read_object<R: Read>(r: &mut SnapshotReader<R>) -> SnapshotResult<M::Object> {
        M::read_object(r)
    }
    fn write_body<W: Write>(&self, w: &mut SnapshotWriter<W>) -> io::Result<()> {
        w.put_u32(self.partition_axis() as u32)?;
        let bounds = self.slab_bounds();
        w.put_u32(bounds.len() as u32)?;
        for &b in bounds {
            w.put_f64(b)?;
        }
        w.put_u32(self.num_shards() as u32)?;
        for i in 0..self.num_shards() {
            write_object_list::<M, W>(&self.shard_model(i).shard_objects(), w)?;
        }
        Ok(())
    }
    fn read_body<R: Read>(
        r: &mut SnapshotReader<R>,
        ctx: &<M as ShardableModel>::Config,
    ) -> SnapshotResult<Self> {
        let axis = r.take_u32()? as usize;
        let nbounds = r.take_u32()? as usize;
        if !(2..=(1 << 16) + 1).contains(&nbounds) {
            return Err(SnapshotError::BadHeader);
        }
        let mut bounds = Vec::with_capacity(nbounds);
        for _ in 0..nbounds {
            bounds.push(r.take_f64()?);
        }
        let nshards = r.take_u32()? as usize;
        if nshards + 1 != nbounds {
            return Err(SnapshotError::BadHeader);
        }
        let mut buckets = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            buckets.push(read_object_list::<M, R>(r)?);
        }
        ShardedDb::from_parts(axis, bounds, buckets, ctx.clone()).map_err(SnapshotError::Invalid)
    }
}

// ---------------------------------------------------------------------------
// 1-D convenience surface (the original public API, kept intact)
// ---------------------------------------------------------------------------

/// Serialize the database's objects into `w` (current format, snapshot
/// version 0).
pub fn save_snapshot<W: Write>(db: &UncertainDb, w: W) -> SnapshotResult<()> {
    write_model(db, 0, w)
}

/// Deserialize a 1-D database from `r`, rebuilding the R-tree.
pub fn load_snapshot<R: Read>(r: R) -> SnapshotResult<UncertainDb> {
    load_snapshot_with(r, EngineConfig::default())
}

/// Deserialize with an explicit engine configuration.
pub fn load_snapshot_with<R: Read>(r: R, config: EngineConfig) -> SnapshotResult<UncertainDb> {
    UncertainDb::with_config(load_objects(r)?, config).map_err(SnapshotError::Invalid)
}

/// Deserialize just the 1-D objects — no index build. The entry point for
/// callers that construct their own storage over the snapshot (e.g. a
/// [`crate::shard::ShardedDb`], which would otherwise pay a full flat
/// database build only to re-shard it). Accepts legacy version-1 files,
/// current flat files, and current *sharded* files (flattened in slab
/// order, so the caller may re-partition freely).
pub fn load_objects<R: Read>(r: R) -> SnapshotResult<Vec<UncertainObject>> {
    let mut r = SnapshotReader::new(r);
    let format = read_magic_and_version(&mut r)?;
    let objects = if format == LEGACY_VERSION {
        read_object_list::<UncertainDb, R>(&mut r)?
    } else {
        let dim = r.take_u32()?;
        if dim != 1 {
            return Err(SnapshotError::DimensionMismatch {
                found: dim,
                expected: 1,
            });
        }
        match r.take_u8()? {
            KIND_FLAT => {
                let _snapshot_version = r.take_u64()?;
                read_object_list::<UncertainDb, R>(&mut r)?
            }
            KIND_SHARDED => {
                let _snapshot_version = r.take_u64()?;
                let _axis = r.take_u32()?;
                let nbounds = r.take_u32()? as usize;
                if !(2..=(1 << 16) + 1).contains(&nbounds) {
                    return Err(SnapshotError::BadHeader);
                }
                for _ in 0..nbounds {
                    let _ = r.take_f64()?;
                }
                let nshards = r.take_u32()? as usize;
                if nshards + 1 != nbounds {
                    return Err(SnapshotError::BadHeader);
                }
                let mut all = Vec::new();
                for _ in 0..nshards {
                    all.extend(read_object_list::<UncertainDb, R>(&mut r)?);
                }
                all
            }
            _ => return Err(SnapshotError::BadHeader),
        }
    };
    r.verify_trailer()?;
    Ok(objects)
}

/// Round-trip helper used by the CLI: save to a file path.
pub fn save_to_path(db: &UncertainDb, path: &std::path::Path) -> SnapshotResult<()> {
    write_model_to_path(db, 0, path)
}

/// Round-trip helper used by the CLI: load from a file path.
pub fn load_from_path(path: &std::path::Path) -> SnapshotResult<UncertainDb> {
    let file = std::fs::File::open(path)?;
    load_snapshot(io::BufReader::new(file))
}

/// Load just the objects from a file path (no index build) — see
/// [`load_objects`].
pub fn load_objects_from_path(path: &std::path::Path) -> SnapshotResult<Vec<UncertainObject>> {
    let file = std::fs::File::open(path)?;
    load_objects(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CpnnQuery, Strategy};
    use crate::testutil::fig7_scenario;

    fn sample_db() -> UncertainDb {
        let (_, objects) = fig7_scenario();
        UncertainDb::build(objects).unwrap()
    }

    #[test]
    fn round_trip_preserves_objects_and_answers() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        let loaded = load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.objects().iter().zip(loaded.objects()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.region(), b.region());
            assert_eq!(a.pdf().bar_count(), b.pdf().bar_count());
        }
        // Query results are identical.
        let q = CpnnQuery::new(0.0, 0.45, 0.0);
        let x = db.cpnn(&q, Strategy::Verified).unwrap();
        let y = loaded.cpnn(&q, Strategy::Verified).unwrap();
        assert_eq!(x.answers, y.answers);
    }

    #[test]
    fn empty_database_round_trips() {
        let db = UncertainDb::build(Vec::new()).unwrap();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        let loaded = load_snapshot(buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_snapshot(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadHeader));
    }

    #[test]
    fn future_version_is_a_dedicated_error() {
        // magic + version 9: a snapshot from a newer build must be
        // distinguishable from garbage.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&9u32.to_le_bytes());
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::UnsupportedVersion {
                    found: 9,
                    supported: VERSION
                }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn legacy_v1_files_still_load() {
        // Hand-encode the version-1 layout for one uniform object.
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // count
        payload.extend_from_slice(&7u64.to_le_bytes()); // id
        payload.extend_from_slice(&1u32.to_le_bytes()); // bars
        payload.extend_from_slice(&2.0f64.to_le_bytes()); // edges
        payload.extend_from_slice(&4.0f64.to_le_bytes());
        payload.extend_from_slice(&1.0f64.to_le_bytes()); // mass
        let digest = fnv1a(&payload);
        payload.extend_from_slice(&digest.to_le_bytes());
        let loaded = load_snapshot(payload.as_slice()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.objects()[0].id(), ObjectId(7));
    }

    #[test]
    fn dimension_mismatch_is_a_dedicated_error() {
        let db2d =
            UncertainDb2d::build(vec![Object2d::circle(ObjectId(1), [3.0, 4.0], 1.0).unwrap()])
                .unwrap();
        let mut buf = Vec::new();
        write_model(&db2d, 5, &mut buf).unwrap();
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::DimensionMismatch {
                found: 2,
                expected: 1
            }
        ));
    }

    #[test]
    fn model_round_trip_preserves_snapshot_version() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_model(&db, 42, &mut buf).unwrap();
        let (loaded, version): (UncertainDb, u64) =
            read_model(buf.as_slice(), &EngineConfig::default()).unwrap();
        assert_eq!(version, 42);
        assert_eq!(loaded.len(), db.len());
    }

    #[test]
    fn sharded_round_trip_preserves_partitioning() {
        let (_, objects) = fig7_scenario();
        let db: ShardedDb<UncertainDb> = UncertainDb::build_sharded(objects, 3).unwrap();
        let mut buf = Vec::new();
        write_model(&db, 9, &mut buf).unwrap();
        let (loaded, version): (ShardedDb<UncertainDb>, u64) =
            read_model(buf.as_slice(), &EngineConfig::default()).unwrap();
        assert_eq!(version, 9);
        assert_eq!(loaded.num_shards(), db.num_shards());
        assert_eq!(loaded.partition_axis(), db.partition_axis());
        assert_eq!(loaded.slab_bounds(), db.slab_bounds());
    }

    #[test]
    fn sharded_snapshot_flattens_through_load_objects() {
        let (_, objects) = fig7_scenario();
        let n = objects.len();
        let db: ShardedDb<UncertainDb> = UncertainDb::build_sharded(objects, 3).unwrap();
        let mut buf = Vec::new();
        write_model(&db, 0, &mut buf).unwrap();
        let flat = load_objects(buf.as_slice()).unwrap();
        assert_eq!(flat.len(), n);
    }

    #[test]
    fn truncation_is_detected() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 12);
        assert!(load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn bit_flip_is_detected_by_checksum() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        // Flip one payload byte in a float (past the header).
        let idx = buf.len() / 2;
        buf[idx] ^= 0x01;
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch { .. } | SnapshotError::Invalid(_)
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("cpnn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cpnn");
        save_to_path(&db, &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        std::fs::remove_file(&path).ok();
    }
}
