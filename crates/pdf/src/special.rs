//! Special functions implemented from scratch.
//!
//! The Gaussian uncertainty experiments (paper Sec. V-B.5) need the normal
//! cdf, hence `erf`. The Rust standard library does not provide it and the
//! workspace deliberately avoids external math crates, so we implement a
//! double-precision `erf`/`erfc` pair here:
//!
//! * `|x| < 2`   — the non-alternating scaled Maclaurin series
//!   `erf(x) = (2x/√π)·e^{-x²}·Σ_{n≥0} (2x²)^n / (1·3·5⋯(2n+1))`,
//!   which has no cancellation (all terms positive).
//! * `|x| ≥ 2`   — the Laplace continued fraction for `erfc`, evaluated with
//!   the modified Lentz algorithm:
//!   `erfc(x) = e^{-x²}/√π · 1/(x + 1/(2x + 2/(x + 3/(2x + ⋯))))`.
//!
//! Both branches converge to full double precision in well under 100
//! iterations; the unit tests pin known reference values to 1e-14.

/// `2/√π`, the prefactor of the error function.
pub const FRAC_2_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// `√(2π)`, used by the normal density.
pub const SQRT_2PI: f64 = 2.506_628_274_631_000_5;

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
///
/// Accurate to roughly 1e-15 over the whole real line; `erf(±∞) = ±1`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 2.0 {
        erf_series(x)
    } else {
        let tail = erfc_continued_fraction(ax);
        let val = 1.0 - tail;
        if x >= 0.0 {
            val
        } else {
            -val
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For large positive `x` this is evaluated directly from the continued
/// fraction, so it does not underflow to `0` until `x ≈ 26` (where the true
/// value drops below the smallest normal double).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 2.0 {
        1.0 - erf_series(x)
    } else if x > 0.0 {
        erfc_continued_fraction(ax)
    } else {
        2.0 - erfc_continued_fraction(ax)
    }
}

/// Standard normal cumulative distribution function `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function `φ(z)`.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / SQRT_2PI
}

/// Inverse of the standard normal cdf (the probit function), via bisection
/// refined with two Newton steps. Accurate to ~1e-12 for `p ∈ (1e-300, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile argument must be a probability, got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Bisection on a generous bracket; Φ is monotone.
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if std_normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 {
            break;
        }
    }
    let mut z = 0.5 * (lo + hi);
    // Newton polish: z -= (Φ(z) - p)/φ(z).
    for _ in 0..2 {
        let pdf = std_normal_pdf(z);
        if pdf > 0.0 {
            z -= (std_normal_cdf(z) - p) / pdf;
        }
    }
    z
}

/// Maclaurin-style series, valid (and fast) for `|x| < 2`.
fn erf_series(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let x2 = x * x;
    let mut term = 1.0_f64;
    let mut sum = 1.0_f64;
    let mut denom = 1.0_f64; // running odd factor 1, 3, 5, ...
    for n in 1..200 {
        denom += 2.0;
        term *= 2.0 * x2 / denom;
        sum += term;
        if term < sum * f64::EPSILON {
            break;
        }
        debug_assert!(n < 199, "erf series failed to converge for x = {x}");
    }
    FRAC_2_SQRT_PI * x * (-x2).exp() * sum
}

/// Laplace continued fraction for `erfc(x)`, `x ≥ 2`, via modified Lentz.
fn erfc_continued_fraction(x: f64) -> f64 {
    debug_assert!(x >= 2.0);
    const TINY: f64 = 1e-300;
    // CF: 1/(x+) 1/2/(x+) 1/(x+) 3/2/(x+) ... in its equivalent form
    // erfc(x) = e^{-x²}/√π · 1/(x + 1/(2x + 2/(x + 3/(2x + 4/(x + ...)))))
    // We evaluate b0 = x, a1 = 1, b1 = 2x, a2 = 2, b2 = x, a3 = 3, b3 = 2x, ...
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0_f64;
    for n in 1..300 {
        let a_n = n as f64; // numerators 1, 2, 3, ...
        let b_n = if n % 2 == 1 { 2.0 * x } else { x };
        d = b_n + a_n * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b_n + a_n / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < f64::EPSILON {
            break;
        }
    }
    (-x * x).exp() / (std::f64::consts::PI.sqrt()) / f
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Abramowitz & Stegun / mpmath.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_9),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (2.5, 0.999_593_047_982_555),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-14, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in ERF_TABLE {
            assert_eq!(erf(-x), -erf(x));
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.5, -1.0, -0.2, 0.0, 0.3, 1.7, 2.0, 2.5, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erfc_large_argument_does_not_underflow_early() {
        // erfc(10) ≈ 2.0884875837625447e-45
        let got = erfc(10.0);
        assert!((got / 2.088_487_583_762_544_7e-45 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
        // Φ(1.96) ≈ 0.9750021048517795
        assert!((std_normal_cdf(1.96) - 0.975_002_104_851_779_5).abs() < 1e-12);
        for z in [0.1, 0.7, 1.3, 2.9] {
            assert!((std_normal_cdf(z) + std_normal_cdf(-z) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6] {
            let z = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-10,
                "p = {p}, z = {z}, cdf = {}",
                std_normal_cdf(z)
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn erf_nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
