//! Crash-recovery properties of the durable storage seam: a server that
//! journals every publish through a [`StorageBackend`] can be recovered
//! — checkpoint + write-ahead-journal replay — into a database that is
//! **bit-for-bit** the live one (verdicts *and* bounds through the full
//! verify/refine pipeline), for 1-D, 2-D, k-NN, and sharded models,
//! under arbitrary interleavings of direct writes, coalesced bursts,
//! queries, and mid-stream checkpoints.
//!
//! The crash half: replaying every byte-prefix of the journal (driven
//! through the fault-injecting [`CrashWriter`]) recovers *some* state
//! the server actually published — the pre-crash state or the last
//! durable burst — never a torn in-between, and the recovered version
//! is monotone in the surviving prefix length.
//!
//! Objects are uniform with integer low edges and power-of-two widths,
//! so every mass/density conversion in the codec is exact (see
//! `proptest_persist.rs` for the dyadic-exactness argument).

use std::collections::BTreeMap;
use std::io::Write as _;

use cpnn_core::persist;
use cpnn_core::server::QueryServer;
use cpnn_core::storage::replay_wal;
use cpnn_core::{
    CpnnQuery, CpnnResult, CrashWriter, EngineConfig, MemoryBackend, Object2d, ObjectId,
    PersistentModel, ShardBalance, ShardedDb, Strategy, UncertainDb, UncertainDb2d,
    UncertainObject,
};
use proptest::prelude::*;
use proptest::Strategy as _;
use proptest::TestCaseError;

/// One step of a random durable workload.
#[derive(Debug, Clone)]
enum Op {
    /// Queue an insert on the coalescing lane (fresh id, dyadic bar).
    QueueInsert(i32, f64),
    /// Queue a remove of the `i`-th live id (possibly already queued for
    /// removal — absent removes still publish and journal).
    QueueRemove(usize),
    /// Publish the queued burst as one swap (one journal record).
    Flush,
    /// Direct (unqueued) insert: its own swap, its own journal record.
    DirectInsert(i32, f64),
    /// Fold the journal into a fresh checkpoint mid-stream.
    Checkpoint,
}

fn workload(max: usize) -> impl proptest::Strategy<Value = Vec<Op>> {
    // The shim has no `prop_oneof!`; a discriminant field selects the
    // variant. Weights: ~40% queued inserts, ~20% removes, ~20% flushes,
    // ~10% direct inserts, ~10% checkpoints.
    prop::collection::vec(
        (
            0u32..10,
            -64i32..64,
            prop::sample::select(vec![1.0f64, 2.0, 4.0]),
            0usize..64,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, lo, w, idx)| match kind {
                0..=3 => Op::QueueInsert(lo, w),
                4 | 5 => Op::QueueRemove(idx),
                6 | 7 => Op::Flush,
                8 => Op::DirectInsert(lo, w),
                _ => Op::Checkpoint,
            })
            .collect()
    })
}

fn uniform(id: u64, lo: i32, w: f64) -> UncertainObject {
    UncertainObject::uniform(ObjectId(id), lo as f64, lo as f64 + w).unwrap()
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

/// Drive `server` through `ops` with `backend` attached, returning the
/// version → pinned-model history of every published state.
fn drive<M>(
    server: &QueryServer<M>,
    ops: &[Op],
    mut insert: impl FnMut(u64, i32, f64) -> M::Object,
) -> BTreeMap<u64, std::sync::Arc<M>>
where
    M: cpnn_core::DistanceModel + PersistentModel + Send + Sync + 'static,
    M::Query: Send + 'static,
    M::Object: Send + 'static,
{
    let mut history = BTreeMap::new();
    let snap = server.snapshot();
    history.insert(snap.version, snap.model);
    let mut live: Vec<u64> = Vec::new();
    let mut fresh: u64 = 10_000;
    let mut queued = 0usize;
    for op in ops {
        match op {
            Op::QueueInsert(lo, w) => {
                let o = insert(fresh, *lo, *w);
                live.push(fresh);
                fresh += 1;
                drop(server.queue_insert(o));
                queued += 1;
            }
            Op::QueueRemove(idx) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.remove(idx % live.len());
                drop(server.queue_remove(ObjectId(id)));
                queued += 1;
            }
            Op::Flush => {
                if queued > 0 {
                    server.flush_writes();
                    queued = 0;
                    let snap = server.snapshot();
                    history.insert(snap.version, snap.model);
                }
            }
            Op::DirectInsert(lo, w) => {
                let o = insert(fresh, *lo, *w);
                live.push(fresh);
                fresh += 1;
                server.insert(o).unwrap();
                let snap = server.snapshot();
                history.insert(snap.version, snap.model);
            }
            Op::Checkpoint => {
                server.checkpoint_now().unwrap();
            }
        }
    }
    if queued > 0 {
        server.flush_writes();
        let snap = server.snapshot();
        history.insert(snap.version, snap.model);
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 1-D + k-NN: full recovery (checkpoint + journal replay) is
    /// bit-for-bit the live state, and every journal byte-prefix
    /// recovers some *published* state exactly.
    #[test]
    fn recovery_matches_live_state_1d(
        ops in workload(24),
        points in prop::collection::vec(-70.0f64..70.0, 2..4),
    ) {
        let initial: Vec<UncertainObject> =
            (0..8).map(|i| uniform(i, (i as i32) * 7 - 28, 4.0)).collect();
        let db = UncertainDb::build(initial).unwrap();
        let backend = MemoryBackend::new();
        let server = QueryServer::start(db, 1, Default::default());
        server.attach_storage(Box::new(backend.clone()));
        server.checkpoint_now().unwrap();

        let history = drive(&server, &ops, uniform);
        let live = server.snapshot();

        // Full recovery ≡ live, bit for bit through the pipeline.
        let rec = backend.recover::<UncertainDb>(&EngineConfig::default()).unwrap().unwrap();
        prop_assert_eq!(rec.version, live.version);
        prop_assert!(rec.torn_at.is_none());
        prop_assert_eq!(rec.model.len(), live.model.len());
        for &q in &points {
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = live.model.cpnn(&query, Strategy::Verified).unwrap();
            let b = rec.model.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("recovered cpnn q = {q}"))?;
            let a = live.model.cknn(q, 2, 0.4, 0.0).unwrap();
            let b = rec.model.cknn(q, 2, 0.4, 0.0).unwrap();
            assert_same(&a, &b, &format!("recovered cknn q = {q}"))?;
        }

        // Crash sweep: every byte-prefix of the journal — produced by
        // crashing a CrashWriter at that exact budget — recovers a
        // version the server actually published, with *exactly* that
        // version's contents. Never a torn in-between.
        let wal = backend.wal_bytes();
        let checkpoint = backend.checkpoint_bytes().expect("checkpoint written");
        let (base, base_version) = persist::read_model::<UncertainDb, _>(
            checkpoint.as_slice(),
            &EngineConfig::default(),
        )
        .unwrap();
        let mut last_version = 0u64;
        for budget in 0..=wal.len() {
            let mut crashing = CrashWriter::new(Vec::new(), budget);
            let _ = crashing.write_all(&wal);
            let survived = crashing.into_inner();
            prop_assert_eq!(survived.len(), budget.min(wal.len()));
            let rec = replay_wal(&survived, base.clone(), base_version).unwrap();
            let expected = history.get(&rec.version).unwrap_or_else(|| {
                panic!("recovered v{} was never published", rec.version)
            });
            prop_assert_eq!(rec.model.len(), expected.len(), "len at budget {}", budget);
            prop_assert!(rec.version >= last_version, "recovery went backwards");
            last_version = rec.version;
            let q = points[0];
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = expected.cpnn(&query, Strategy::Verified).unwrap();
            let b = rec.model.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("crash budget {budget} -> v{}", rec.version))?;
        }
        prop_assert_eq!(last_version, live.version, "full journal must reach the live state");
    }

    /// Sharded 1-D: recovery preserves the partitioning (axis + exact
    /// slab bounds) and every query agrees bit for bit.
    #[test]
    fn recovery_matches_live_state_sharded(
        ops in workload(18),
        points in prop::collection::vec(-70.0f64..70.0, 2..4),
        shards in prop::sample::select(vec![2usize, 4]),
        quantile in prop::bool::ANY,
    ) {
        let balance = if quantile { ShardBalance::Quantile } else { ShardBalance::Width };
        let initial: Vec<UncertainObject> =
            (0..10).map(|i| uniform(i, (i as i32) * 9 - 45, 4.0)).collect();
        let db = ShardedDb::<UncertainDb>::build_with(
            initial,
            EngineConfig::default(),
            shards,
            balance,
        )
        .unwrap();
        let backend = MemoryBackend::new();
        let server = QueryServer::start(db, 1, Default::default());
        server.attach_storage(Box::new(backend.clone()));
        server.checkpoint_now().unwrap();

        let history = drive(&server, &ops, uniform);
        let live = server.snapshot();

        let rec = backend
            .recover::<ShardedDb<UncertainDb>>(&EngineConfig::default())
            .unwrap()
            .unwrap();
        prop_assert_eq!(rec.version, live.version);
        prop_assert_eq!(rec.model.num_shards(), live.model.num_shards());
        prop_assert_eq!(rec.model.partition_axis(), live.model.partition_axis());
        prop_assert_eq!(rec.model.slab_bounds(), live.model.slab_bounds());
        for &q in &points {
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = live.model.cpnn(&query, Strategy::Verified).unwrap();
            let b = rec.model.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("sharded recovered q = {q}"))?;
        }

        // Prefix sweep (coarser: every 7th byte keeps the sharded case
        // fast; the 1-D test sweeps every byte).
        let wal = backend.wal_bytes();
        let checkpoint = backend.checkpoint_bytes().expect("checkpoint written");
        let (base, base_version) = persist::read_model::<ShardedDb<UncertainDb>, _>(
            checkpoint.as_slice(),
            &EngineConfig::default(),
        )
        .unwrap();
        for budget in (0..=wal.len()).step_by(7) {
            let rec = replay_wal(&wal[..budget], base.clone(), base_version).unwrap();
            let expected = history.get(&rec.version).unwrap_or_else(|| {
                panic!("recovered v{} was never published", rec.version)
            });
            let q = points[0];
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = expected.cpnn(&query, Strategy::Verified).unwrap();
            let b = rec.model.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("sharded crash budget {budget}"))?;
        }
    }

    /// 2-D: raw-f64 objects make every coordinate exact; recovery and
    /// the prefix sweep agree bit for bit on 2-D k-NN.
    #[test]
    fn recovery_matches_live_state_2d(
        ops in workload(16),
        points in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..4),
    ) {
        let initial: Vec<Object2d> = (0..8)
            .map(|i| {
                let x = (i as f64 * 9.7) % 60.0 - 30.0;
                let y = (i as f64 * 5.3) % 40.0 - 20.0;
                Object2d::circle(ObjectId(i), [x, y], 1.0 + (i % 3) as f64).unwrap()
            })
            .collect();
        let db = UncertainDb2d::build(initial).unwrap();
        let backend = MemoryBackend::new();
        let server = QueryServer::start(db, 1, Default::default());
        server.attach_storage(Box::new(backend.clone()));
        server.checkpoint_now().unwrap();

        let history = drive(&server, &ops, |id, lo, w| {
            Object2d::circle(ObjectId(id), [lo as f64, (lo as f64) / 2.0], w).unwrap()
        });
        let live = server.snapshot();

        let rec = backend
            .recover::<UncertainDb2d>(&Default::default())
            .unwrap()
            .unwrap();
        prop_assert_eq!(rec.version, live.version);
        prop_assert_eq!(rec.model.len(), live.model.len());
        for &(x, y) in &points {
            let a = live.model.cknn([x, y], 2, 0.3, 0.01).unwrap();
            let b = rec.model.cknn([x, y], 2, 0.3, 0.01).unwrap();
            assert_same(&a, &b, &format!("2d recovered q = ({x}, {y})"))?;
        }

        let wal = backend.wal_bytes();
        let checkpoint = backend.checkpoint_bytes().expect("checkpoint written");
        let (base, base_version) =
            persist::read_model::<UncertainDb2d, _>(checkpoint.as_slice(), &Default::default())
                .unwrap();
        for budget in (0..=wal.len()).step_by(5) {
            let rec = replay_wal(&wal[..budget], base.clone(), base_version).unwrap();
            let expected = history.get(&rec.version).unwrap_or_else(|| {
                panic!("recovered v{} was never published", rec.version)
            });
            let (x, y) = points[0];
            let a = expected.cknn([x, y], 2, 0.3, 0.01).unwrap();
            let b = rec.model.cknn([x, y], 2, 0.3, 0.01).unwrap();
            assert_same(&a, &b, &format!("2d crash budget {budget}"))?;
        }
    }
}

/// Deterministic end-to-end crash drill on the file backend: burst →
/// no checkpoint → reopen the directory cold — the journal tail must
/// carry the burst across the "crash" (the dropped backend stands in
/// for a killed process).
#[test]
fn file_backend_survives_an_unclean_drop() {
    let dir = std::env::temp_dir().join(format!("cpnn-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let backend = cpnn_core::FileBackend::open(&dir).unwrap();
        let db = UncertainDb::build(
            (0..6)
                .map(|i| uniform(i, i as i32 * 5, 4.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let server = QueryServer::start(db, 1, Default::default());
        server.attach_storage(Box::new(backend));
        server.checkpoint_now().unwrap();
        drop(server.queue_insert(uniform(100, 3, 2.0)));
        drop(server.queue_remove(ObjectId(2)));
        server.flush_writes();
        // No checkpoint, no clean shutdown: the WAL holds the burst.
    }
    let mut backend = cpnn_core::FileBackend::open(&dir).unwrap();
    let rec = backend
        .recover::<UncertainDb>(&EngineConfig::default())
        .unwrap()
        .expect("checkpoint exists");
    assert_eq!(rec.version, 1, "one burst after the v0 checkpoint");
    assert_eq!(rec.records, 1, "exactly one journal record replayed");
    assert!(rec.torn_at.is_none());
    assert_eq!(rec.model.len(), 6); // 6 - 1 removed + 1 inserted
    assert!(rec.model.objects().iter().any(|o| o.id() == ObjectId(100)));
    assert!(rec.model.objects().iter().all(|o| o.id() != ObjectId(2)));
    let _ = std::fs::remove_dir_all(&dir);
}
