//! The candidate set: objects surviving the filtering phase, with their
//! distance distributions, sorted by near point (paper Sec. IV-A: "sort
//! these objects in the ascending order of their near points").

use crate::distance::DistanceDistribution;
use crate::error::Result;
use crate::object::{ObjectId, UncertainObject};

/// The k-NN pruning horizon: the `k`-th smallest far point (`fmin` for
/// `k = 1`) — objects whose near point exceeds it cannot be among the `k`
/// nearest. Sorts `fars` in place; `INFINITY` when empty. Shared by the
/// candidate set and every [`crate::pipeline::DistanceModel`] filter that
/// pre-prunes with exact region distances.
pub fn k_horizon(fars: &mut [f64], k: usize) -> f64 {
    fars.sort_by(f64::total_cmp);
    fars.get(k.max(1).min(fars.len().max(1)) - 1)
        .copied()
        .unwrap_or(f64::INFINITY)
}

/// One candidate: an object id plus its distance distribution w.r.t. the
/// query point.
#[derive(Debug, Clone)]
pub struct CandidateMember {
    /// The object's id.
    pub id: ObjectId,
    /// Distribution of `Ri = |Xi − q|`.
    pub dist: DistanceDistribution,
}

/// The candidate set `C` for a query point `q`, ordered by near point.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    q: f64,
    members: Vec<CandidateMember>,
    fmin: f64,
    fmax: f64,
    /// Pruning horizon: `fmin` for 1-NN, the `k`-th smallest far point for
    /// the k-NN extension.
    horizon: f64,
}

impl CandidateSet {
    /// Build the candidate set from `objects` for query point `q`.
    ///
    /// Objects whose near point exceeds `fmin` are dropped here as a safety
    /// net (the R-tree filter normally already pruned them — the pruning
    /// rule is identical, so this is a no-op after filtering).
    ///
    /// `max_distance_bins`, when non-zero, re-bins each distance pdf onto at
    /// most that many bars (see [`DistanceDistribution::with_max_bins`]).
    pub fn build<'a, I>(objects: I, q: f64, max_distance_bins: usize) -> Result<Self>
    where
        I: IntoIterator<Item = &'a UncertainObject>,
    {
        Self::build_k(objects, q, max_distance_bins, 1)
    }

    /// k-NN generalization: keep every object whose near point is within
    /// `fmin_k`, the `k`-th smallest far point (objects beyond it cannot be
    /// among the `k` nearest).
    pub fn build_k<'a, I>(objects: I, q: f64, max_distance_bins: usize, k: usize) -> Result<Self>
    where
        I: IntoIterator<Item = &'a UncertainObject>,
    {
        let mut members: Vec<CandidateMember> = Vec::new();
        for obj in objects {
            let dist =
                DistanceDistribution::from_pdf(obj.pdf(), q)?.with_max_bins(max_distance_bins)?;
            members.push(CandidateMember { id: obj.id(), dist });
        }
        Ok(Self::assemble(q, members, k))
    }

    /// Assemble a candidate set directly from distance distributions —
    /// the entry point for non-1-D uncertainty (e.g. 2-D circular regions),
    /// whose verifier machinery only ever sees distances (paper Sec. IV-A:
    /// "our solution only needs distance pdfs and cdfs").
    pub fn from_distances(items: Vec<(ObjectId, DistanceDistribution)>, k: usize) -> Self {
        let members = items
            .into_iter()
            .map(|(id, dist)| CandidateMember { id, dist })
            .collect();
        Self::assemble(f64::NAN, members, k)
    }

    fn assemble(q: f64, mut members: Vec<CandidateMember>, k: usize) -> Self {
        let mut fars: Vec<f64> = members.iter().map(|m| m.dist.far()).collect();
        let horizon = k_horizon(&mut fars, k);
        let fmin = fars.first().copied().unwrap_or(f64::INFINITY);
        members.retain(|m| m.dist.near() <= horizon);
        let fmax = members
            .iter()
            .map(|m| m.dist.far())
            .fold(f64::NEG_INFINITY, f64::max);
        // Tie-break equal near points by id: candidate order (and with it
        // report order) is then independent of how the survivors arrived —
        // R-tree emission order and sharded merge order give the same set.
        members.sort_by(|a, b| {
            a.dist
                .near()
                .total_cmp(&b.dist.near())
                .then(a.id.cmp(&b.id))
        });
        Self {
            q,
            members,
            fmin,
            fmax,
            horizon,
        }
    }

    /// The query point.
    pub fn query(&self) -> f64 {
        self.q
    }

    /// Candidates in ascending near-point order.
    pub fn members(&self) -> &[CandidateMember] {
        &self.members
    }

    /// Number of candidates `|C|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the candidate set empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Minimum far point `fmin` — beyond this distance every object has zero
    /// qualification probability (for 1-NN).
    pub fn fmin(&self) -> f64 {
        self.fmin
    }

    /// Maximum far point `fmax`.
    pub fn fmax(&self) -> f64 {
        self.fmax
    }

    /// The pruning horizon: `fmin` for 1-NN candidate sets, `fmin_k` for
    /// k-NN candidate sets. Subregions are built up to this distance.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::uniform(ObjectId(id), lo, hi).unwrap()
    }

    #[test]
    fn members_sorted_by_near_point() {
        let objects = vec![obj(0, 8.0, 12.0), obj(1, 1.0, 4.0), obj(2, 4.5, 6.0)];
        let c = CandidateSet::build(&objects, 5.0, 0).unwrap();
        let nears: Vec<f64> = c.members().iter().map(|m| m.dist.near()).collect();
        for w in nears.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // q = 5 is inside object 2: its near point is 0.
        assert_eq!(c.members()[0].id, ObjectId(2));
    }

    #[test]
    fn fmin_and_fmax_are_extremes_of_far_points() {
        let objects = vec![obj(0, 0.0, 2.0), obj(1, 1.0, 5.0)];
        let c = CandidateSet::build(&objects, 0.0, 0).unwrap();
        assert_eq!(c.fmin(), 2.0);
        assert_eq!(c.fmax(), 5.0);
    }

    #[test]
    fn hopeless_objects_are_dropped() {
        // Object 1's nearest possible distance (8) exceeds fmin (= 2).
        let objects = vec![obj(0, 0.0, 2.0), obj(1, 8.0, 9.0)];
        let c = CandidateSet::build(&objects, 0.0, 0).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.members()[0].id, ObjectId(0));
    }

    #[test]
    fn empty_input_gives_empty_set() {
        let c = CandidateSet::build(std::iter::empty(), 0.0, 0).unwrap();
        assert!(c.is_empty());
    }
}
