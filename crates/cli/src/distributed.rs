//! Distributed serving commands: `shard-split` (partition a dataset into
//! per-shard durable data directories + a shard map), `shard-serve` (host
//! one shard's slab as its own OS process on a socket), and `route` (the
//! query router front-end speaking the same line protocol as `serve`).
//!
//! The three commands compose into a fleet that answers bit-for-bit like
//! the single-process `serve` loop:
//!
//! ```text
//! cpnn shard-split data.cpnn --out fleet --shards 4
//! cpnn shard-serve fleet/shard0 &    # ... one process per shard
//! cpnn shard-serve fleet/shard1 &
//! cpnn route fleet/shards.cpsm --queries workload.txt
//! ```

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cpnn_core::persist::load_objects_from_path;
use cpnn_core::{EngineConfig, FileBackend, QueryServer, ShardableModel, UncertainDb};
use cpnn_router::{
    QueryRouter, RouterConfig, ShardAddr, ShardListener, ShardMap, ShardServeConfig,
    ShardServerHandle, UpdateOp,
};

use crate::args::ArgBag;
use crate::{parse_serve_line, shard_balance_args, ServeRequest};

/// The shard-map file name `shard-split` writes and `route` loads.
pub const SHARD_MAP_FILE: &str = "shards.cpsm";
/// The socket file each shard process binds inside its data directory.
pub const SHARD_SOCKET_FILE: &str = "shard.sock";

/// `cpnn shard-split FILE --out DIR [--shards N] [--shard-balance B]` —
/// partition a dataset snapshot into per-shard durable data directories
/// (each holding its slab's checkpoint, ready for `shard-serve`) plus a
/// `shards.cpsm` map for `route`. The axis and slab boundaries are the
/// ones a single-process `--shards N` serve would use, which is what
/// makes the routed fleet answer identically.
pub fn shard_split(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let path: PathBuf = bag.positional("dataset file")?;
    let out: PathBuf = bag.required("out")?;
    let shards: usize = bag.optional("shards")?.unwrap_or(4);
    let balance = shard_balance_args(bag)?;
    bag.finish()?;

    let sharded = UncertainDb::build_sharded_with(load_objects_from_path(&path)?, shards, balance)?;
    std::fs::create_dir_all(&out)?;
    let mut addrs = Vec::with_capacity(shards);
    for i in 0..sharded.num_shards() {
        let dir = out.join(format!("shard{i}"));
        // Seed each shard's data directory through the same durable seam
        // a live shard process uses: attach a FileBackend, checkpoint,
        // shut down — so `shard-serve DIR` recovers exactly this state.
        let model = UncertainDb::with_config(
            sharded.shard_model(i).shard_objects(),
            *sharded.shard_configuration(),
        )?;
        let objects = model.len();
        let backend = FileBackend::open(&dir)?;
        let server = QueryServer::start(model, 1, sharded.pipeline_config());
        server.attach_storage(Box::new(backend));
        server.checkpoint_now()?;
        server.shutdown();
        println!("shard{i}: {objects} object(s) -> {}", dir.display());
        addrs.push(ShardAddr::Unix(dir.join(SHARD_SOCKET_FILE)));
    }
    let map = ShardMap {
        axis: sharded.partition_axis(),
        bounds: sharded.slab_bounds().to_vec(),
        addrs,
    };
    let map_path = out.join(SHARD_MAP_FILE);
    map.write_to_path(&map_path)?;
    println!(
        "shard map: {} shard(s) along axis {} -> {}",
        map.shard_count(),
        map.axis,
        map_path.display()
    );
    Ok(())
}

/// `cpnn shard-serve DIR [--listen ADDR] [--threads T]
/// [--checkpoint-every N]` — host one shard as its own OS process:
/// recover the slab from DIR (checkpoint + write-ahead journal tail),
/// then answer filter/update requests over a socket until killed. A
/// restart with the same DIR resumes from the last durable burst — no
/// global rebuild, which is what lets `route` restart a dead shard
/// independently.
pub fn shard_serve(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = bag.positional("shard data directory")?;
    let listen: Option<String> = bag.optional("listen")?;
    let threads: usize = bag.optional("threads")?.unwrap_or(1);
    let checkpoint_every: u64 = bag.optional("checkpoint-every")?.unwrap_or(8);
    bag.finish()?;

    let mut backend = FileBackend::open(&dir)?;
    let recovered = backend
        .recover::<UncertainDb>(&EngineConfig::default())?
        .ok_or_else(|| {
            format!(
                "no checkpoint in {} — run `cpnn shard-split` first",
                dir.display()
            )
        })?;
    if let Some(off) = recovered.torn_at {
        eprintln!("journal tail torn at byte {off}; recovered the last durable burst instead");
    }
    let addr = match listen {
        Some(raw) => ShardAddr::parse(&raw),
        None => ShardAddr::Unix(dir.join(SHARD_SOCKET_FILE)),
    };
    let objects = recovered.model.len();
    let version = recovered.version;
    let records = recovered.records;
    let pipeline = recovered.model.pipeline_config();
    let server = std::sync::Arc::new(QueryServer::start_at(
        recovered.model,
        version,
        threads,
        pipeline,
    ));
    // Attach before accepting any write, then fold the replayed journal
    // into a fresh checkpoint (mirrors the single-process serve loop).
    server.attach_storage(Box::new(backend));
    server.checkpoint_now()?;
    let listener = ShardListener::bind(&addr)?;
    let handle = ShardServerHandle::spawn(server, listener, ShardServeConfig { checkpoint_every })?;
    eprintln!(
        "shard serving {objects} object(s) at v{version} ({records} journal record(s) replayed) \
         on {} — kill the process to stop",
        handle.addr()
    );
    // A shard process lives until killed; durability is the write-ahead
    // journal's job, not a graceful shutdown's.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `cpnn route MAPFILE [--queries FILE] [--timeout-ms N] [--retries N]
/// [--backoff-ms N]` — the router front-end: load the shard map, connect
/// to every shard process, and serve the same line protocol as `serve`
/// (same request grammar, same response lines), fanning each query out
/// with horizon pruning and merging candidates router-side. A dead shard
/// degrades queries that need it to a typed `unavailable` line; queries
/// whose horizon excludes it keep answering, and the router reconnects
/// automatically once the shard comes back.
pub fn route(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let map_path: PathBuf = bag.positional("shard map file")?;
    let queries: Option<PathBuf> = bag.optional("queries")?;
    let timeout_ms: u64 = bag.optional("timeout-ms")?.unwrap_or(5_000);
    let retries: u32 = bag.optional("retries")?.unwrap_or(2);
    let backoff_ms: u64 = bag.optional("backoff-ms")?.unwrap_or(50);
    bag.finish()?;

    let map = ShardMap::read_from_path(&map_path)?;
    let cfg = RouterConfig {
        timeout: Duration::from_millis(timeout_ms.max(1)),
        retries,
        backoff: Duration::from_millis(backoff_ms),
    };
    let mut router: QueryRouter<UncertainDb> =
        QueryRouter::connect(&map, Default::default(), cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "routing over {} shard(s), {} object(s) at v{}; send `quit` or EOF to stop",
        map.shard_count(),
        router.objects(),
        router.version()
    );

    let start = Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut queued: Vec<UpdateOp<UncertainDb>> = Vec::new();
    let mut served = 0u64;
    let mut seq = 0u64;
    let mut line_no = 0u64;

    let reader: Box<dyn BufRead> = match queries {
        Some(path) => Box::new(std::io::BufReader::new(std::fs::File::open(path)?)),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    for line in reader.lines() {
        let line = line?;
        line_no += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" {
            break;
        }
        match parse_serve_line(line) {
            Ok(ServeRequest::Query(q, spec)) => {
                // A queued update burst ends here, exactly like `serve`:
                // the query must observe every update queued before it.
                flush_burst(&mut router, &mut queued, &mut out)?;
                match router.query(&q, &spec) {
                    Ok(res) => {
                        served += 1;
                        writeln!(
                            out,
                            "#{seq} v{} answers={:?} cands={} t={:?}",
                            router.version(),
                            res.answers.iter().map(|id| id.0).collect::<Vec<_>>(),
                            res.stats.candidates,
                            res.stats.total_time()
                        )?;
                    }
                    // Typed degradation: the line names the dead shard and
                    // the router keeps serving (it will reconnect once the
                    // shard returns).
                    Err(e) => writeln!(out, "#{seq} v{} error: {e}", router.version())?,
                }
                seq += 1;
            }
            Ok(ServeRequest::Insert(object)) => queued.push(UpdateOp::Insert(object)),
            Ok(ServeRequest::Remove(id)) => queued.push(UpdateOp::Remove(id)),
            Ok(ServeRequest::Stats) => {
                flush_burst(&mut router, &mut queued, &mut out)?;
                match router.stats() {
                    Ok(s) => {
                        let sv = &s.server;
                        writeln!(
                            out,
                            "stats served={} updates={} coalesced_batches={} applied_updates={} \
                             cache_hits={} cache_misses={} shared_hits={} outcome_hits={} \
                             wal_records={} checkpoints={}",
                            sv.served,
                            sv.updates,
                            sv.coalesced_batches,
                            sv.applied_updates,
                            sv.cache_hits,
                            sv.cache_misses,
                            sv.shared_hits,
                            sv.outcome_hits,
                            sv.wal_records,
                            sv.checkpoints
                        )?;
                        let r = &s.router;
                        writeln!(
                            out,
                            "router objects={} shard_filters={} fanned_out={} pruned={} \
                             retries={} reconnects={} bursts={} ops_forwarded={}",
                            s.objects,
                            s.shard_filters,
                            r.fanned_out,
                            r.pruned,
                            r.retries,
                            r.reconnects,
                            r.bursts,
                            r.ops_forwarded
                        )?;
                    }
                    Err(e) => writeln!(out, "stats error: {e}")?,
                }
            }
            Err(msg) => eprintln!("line {line_no}: {msg}"),
        }
        out.flush()?;
    }
    flush_burst(&mut router, &mut queued, &mut out)?;
    out.flush()?;
    let wall = start.elapsed();
    let stats = router.router_stats();
    eprintln!(
        "routed {served} queries ({} shard filters fanned out, {} pruned), {} update burst(s) \
         in {wall:.3?}",
        stats.fanned_out, stats.pruned, stats.bursts
    );
    Ok(())
}

/// End the current update burst: forward it as one coalesced frame per
/// owning shard and print each op's outcome in queue order — the same
/// lines `serve` prints, so routed and single-process transcripts diff
/// clean.
fn flush_burst(
    router: &mut QueryRouter<UncertainDb>,
    queued: &mut Vec<UpdateOp<UncertainDb>>,
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if queued.is_empty() {
        return Ok(());
    }
    match router.update(std::mem::take(queued)) {
        Ok(report) => {
            for outcome in &report.outcomes {
                match outcome {
                    Ok(()) => writeln!(
                        out,
                        "update v{} objects={} batch={}",
                        report.version, report.objects, report.batch
                    )?,
                    Err(e) => writeln!(out, "update rejected: {e}")?,
                }
            }
        }
        // The burst could not reach its shard: typed, loud, non-fatal.
        Err(e) => writeln!(out, "update failed: {e}")?,
    }
    Ok(())
}
