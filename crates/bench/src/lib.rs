//! # cpnn-bench — benchmark harness for the ICDE 2008 C-PNN evaluation
//!
//! Every figure of the paper's Sec. V (Figs. 9–14) plus Table III has a
//! module under [`experiments`] that regenerates its rows/series, and a
//! Criterion bench under `benches/`. The `repro` binary drives the full
//! sweep:
//!
//! ```text
//! cargo run -p cpnn-bench --release --bin repro -- all
//! cargo run -p cpnn-bench --release --bin repro -- --quick fig10 fig12
//! ```
//!
//! Results land in `results/<id>.md` and `results/<id>.csv`, with the
//! machine-readable timing series in `BENCH_pr<N>.json` (see the README's
//! figure → experiment table for the paper-vs-measured mapping).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{run_queries, run_queries_batched, BatchRunSummary, RunSummary};
pub use report::Table;
