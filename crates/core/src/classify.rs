//! The classifier (paper Definition 1 and Fig. 4).

use crate::bounds::ProbBound;
use crate::error::{CoreError, Result};

/// Verdict for a candidate object (Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Qualifies as a C-PNN answer (Fig. 4 (a), (b)).
    Satisfy,
    /// Can never qualify: the upper bound is below the threshold (Fig. 4 (c)).
    Fail,
    /// Not yet decidable (Fig. 4 (d)); passes to the next verifier or to
    /// refinement.
    Unknown,
}

/// The C-PNN acceptance rule: threshold `P ∈ (0, 1]` and tolerance
/// `Δ ∈ [0, 1]`.
///
/// An object **satisfies** the query iff `p.u ≥ P` and (`p.l ≥ P` or
/// `p.u − p.l ≤ Δ`); it **fails** iff `p.u < P`. The comparisons are
/// inclusive, matching Fig. 4(a) where `p.l = P` is accepted (the scan of
/// the paper is ambiguous between `>` and `≥`; this implementation
/// pins `≥`, matching Definition 1's "at least `P`").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classifier {
    threshold: f64,
    tolerance: f64,
}

impl Classifier {
    /// Validated constructor.
    pub fn new(threshold: f64, tolerance: f64) -> Result<Self> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        if !(0.0..=1.0).contains(&tolerance) {
            return Err(CoreError::InvalidTolerance(tolerance));
        }
        Ok(Self {
            threshold,
            tolerance,
        })
    }

    /// The threshold `P`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The tolerance `Δ`.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Apply Definition 1 to a probability bound.
    pub fn classify(&self, bound: &ProbBound) -> Label {
        if bound.hi() < self.threshold {
            Label::Fail
        } else if bound.lo() >= self.threshold || bound.width() <= self.tolerance {
            Label::Satisfy
        } else {
            Label::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four cases of paper Fig. 4 with P = 0.8, Δ = 0.15.
    #[test]
    fn figure4_cases() {
        let c = Classifier::new(0.8, 0.15).unwrap();
        // (a) [0.8, 0.96]: lower bound meets P.
        assert_eq!(c.classify(&ProbBound::new(0.8, 0.96)), Label::Satisfy);
        // (b) [0.75, 0.85]: u ≥ P and width 0.1 ≤ Δ.
        assert_eq!(c.classify(&ProbBound::new(0.75, 0.85)), Label::Satisfy);
        // (c) [0.65, 0.78]: u < P.
        assert_eq!(c.classify(&ProbBound::new(0.65, 0.78)), Label::Fail);
        // (d) [0.1, 0.85]: u ≥ P but wide and l < P.
        assert_eq!(c.classify(&ProbBound::new(0.1, 0.85)), Label::Unknown);
        // (d) continued: if l later rises to 0.81 the object satisfies.
        assert_eq!(c.classify(&ProbBound::new(0.81, 0.85)), Label::Satisfy);
    }

    #[test]
    fn tolerance_zero_needs_lower_bound_to_clear_threshold() {
        let c = Classifier::new(0.3, 0.0).unwrap();
        assert_eq!(c.classify(&ProbBound::new(0.29, 0.9)), Label::Unknown);
        assert_eq!(c.classify(&ProbBound::new(0.3, 0.9)), Label::Satisfy);
        // Exact value below threshold: width 0 ≤ Δ but u < P → fail.
        assert_eq!(c.classify(&ProbBound::exact(0.29)), Label::Fail);
        // Exact at threshold: satisfies.
        assert_eq!(c.classify(&ProbBound::exact(0.3)), Label::Satisfy);
    }

    #[test]
    fn tolerance_admits_straddling_bounds() {
        // The introduction's example: P = 30%, Δ = 2%; an object whose true
        // probability is 29% can be accepted while its bound straddles P
        // with width ≤ Δ.
        let c = Classifier::new(0.3, 0.02).unwrap();
        assert_eq!(c.classify(&ProbBound::new(0.29, 0.305)), Label::Satisfy);
    }

    #[test]
    fn vacuous_bound_is_unknown() {
        let c = Classifier::new(0.5, 0.01).unwrap();
        assert_eq!(c.classify(&ProbBound::vacuous()), Label::Unknown);
    }

    #[test]
    fn threshold_one_is_allowed() {
        let c = Classifier::new(1.0, 0.0).unwrap();
        assert_eq!(c.classify(&ProbBound::exact(1.0)), Label::Satisfy);
        assert_eq!(c.classify(&ProbBound::new(0.99, 0.999)), Label::Fail);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Classifier::new(0.0, 0.1).is_err());
        assert!(Classifier::new(1.1, 0.1).is_err());
        assert!(Classifier::new(-0.2, 0.1).is_err());
        assert!(Classifier::new(0.5, -0.1).is_err());
        assert!(Classifier::new(0.5, 1.1).is_err());
    }
}
