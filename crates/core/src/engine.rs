//! The query engine: the full three-phase C-PNN pipeline of paper Fig. 3
//! (filter → verify → refine), plus the baselines it is benchmarked against.

use std::time::{Duration, Instant};

use cpnn_rtree::{Params, RTree, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bounds::ProbBound;
use crate::candidate::CandidateSet;
use crate::classify::{Classifier, Label};
use crate::error::{CoreError, Result};
use crate::exact::{basic_probabilities, exact_probabilities};
use crate::framework::{default_verifiers, run_verification, StageReport};
use crate::montecarlo::monte_carlo_probabilities;
use crate::object::{ObjectId, UncertainObject};
use crate::refine::{incremental_refine, RefinementOrder};
use crate::subregion::SubregionTable;
use crate::verifiers::VerificationState;

/// Evaluation strategy — the three methods compared throughout Sec. V, plus
/// the sampling baseline of \[9\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Exact probabilities for every candidate by direct numerical
    /// integration (\[5\]); answers thresholded afterwards.
    Basic,
    /// Skip verification; incremental refinement directly ("Refine").
    RefineOnly,
    /// Verifiers first, refinement only for leftovers ("VR" — the paper's
    /// proposed method).
    Verified,
    /// Monte-Carlo sampling over possible worlds (\[9\]).
    MonteCarlo {
        /// Number of sampled worlds.
        worlds: usize,
        /// RNG seed (queries are deterministic given the seed).
        seed: u64,
    },
}

/// A C-PNN query: point, threshold `P`, tolerance `Δ` (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpnnQuery {
    /// The query point `q`.
    pub q: f64,
    /// Threshold `P ∈ (0, 1]`.
    pub threshold: f64,
    /// Tolerance `Δ ∈ [0, 1]`.
    pub tolerance: f64,
}

impl CpnnQuery {
    /// Convenience constructor.
    pub fn new(q: f64, threshold: f64, tolerance: f64) -> Self {
        Self {
            q,
            threshold,
            tolerance,
        }
    }
}

/// Per-candidate verdict in a query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectReport {
    /// The object.
    pub id: ObjectId,
    /// Final probability bound (collapsed to a point for exact strategies).
    pub bound: ProbBound,
    /// Final classification.
    pub label: Label,
}

/// Wall-clock and work statistics for one query (feeds Figs. 9–13).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Objects in the database.
    pub total_objects: usize,
    /// Candidate set size `|C|` after filtering.
    pub candidates: usize,
    /// Subregion count `M` (0 when no table was built).
    pub subregions: usize,
    /// Filtering (R-tree) time.
    pub filter_time: Duration,
    /// Initialization time (distance distributions + subregion table).
    pub init_time: Duration,
    /// Verification time (all verifier stages).
    pub verify_time: Duration,
    /// Refinement / exact-evaluation time.
    pub refine_time: Duration,
    /// Per-verifier-stage reports (empty for non-verified strategies).
    pub stages: Vec<StageReport>,
    /// Objects that entered refinement.
    pub refined_objects: usize,
    /// Work counter: subregion integrations (VR/Refine) or integrand
    /// evaluations (Basic) or sampled worlds (Monte-Carlo).
    pub integrations: usize,
    /// Did verification alone resolve the query (Fig. 13's metric)?
    pub resolved_by_verification: bool,
}

impl QueryStats {
    /// Total time across all phases.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.init_time + self.verify_time + self.refine_time
    }
}

/// Result of a C-PNN query.
#[derive(Debug, Clone)]
pub struct CpnnResult {
    /// IDs of objects satisfying the query, ascending.
    pub answers: Vec<ObjectId>,
    /// Verdict for every candidate (in candidate order).
    pub reports: Vec<ObjectReport>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Result of a plain PNN query: every candidate with its qualification
/// probability, descending.
#[derive(Debug, Clone)]
pub struct PnnResult {
    /// `(id, probability)` pairs, descending by probability.
    pub probabilities: Vec<(ObjectId, f64)>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Cap on distance-histogram resolution (0 = exact folds). Bounds the
    /// subregion count `M`; see `DistanceDistribution::with_max_bins`.
    pub max_distance_bins: usize,
    /// Adaptive-Simpson tolerance for the Basic baseline.
    pub basic_tolerance: f64,
    /// Subregion visiting order during incremental refinement.
    pub refinement_order: RefinementOrder,
    /// R-tree fan-out parameters.
    pub rtree_params: Params,
    /// Add the FL-SR verifier to the chain (an extra lower-bound pass
    /// beyond the paper; see `verifiers::FarLowerSubregion`).
    pub extended_verifiers: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_distance_bins: 64,
            basic_tolerance: 1e-6,
            refinement_order: RefinementOrder::DescendingMass,
            rtree_params: Params::default(),
            extended_verifiers: false,
        }
    }
}

/// An in-memory database of 1-D uncertain objects with an R-tree over their
/// uncertainty regions.
#[derive(Debug)]
pub struct UncertainDb {
    objects: Vec<UncertainObject>,
    tree: RTree<usize, 1>,
    config: EngineConfig,
}

impl UncertainDb {
    /// Build with default configuration. Fails on duplicate object ids.
    pub fn build(objects: Vec<UncertainObject>) -> Result<Self> {
        Self::with_config(objects, EngineConfig::default())
    }

    /// Build with explicit configuration.
    pub fn with_config(objects: Vec<UncertainObject>, config: EngineConfig) -> Result<Self> {
        let mut ids: Vec<u64> = objects.iter().map(|o| o.id().0).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(CoreError::DuplicateObjectId(w[0]));
        }
        let tree = RTree::bulk_load_with(
            objects
                .iter()
                .enumerate()
                .map(|(idx, o)| {
                    let (lo, hi) = o.region();
                    (Rect::interval(lo, hi), idx)
                })
                .collect(),
            config.rtree_params,
        );
        Ok(Self {
            objects,
            tree,
            config,
        })
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The stored objects.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The underlying R-tree over uncertainty regions (crate-internal:
    /// used by the range-query module).
    pub(crate) fn tree(&self) -> &RTree<usize, 1> {
        &self.tree
    }

    /// Insert a new object (dynamic R-tree insertion; the sensor-network
    /// use case streams new readings into the database). Fails on a
    /// duplicate id.
    pub fn insert(&mut self, object: UncertainObject) -> Result<()> {
        if self.objects.iter().any(|o| o.id() == object.id()) {
            return Err(CoreError::DuplicateObjectId(object.id().0));
        }
        let (lo, hi) = object.region();
        let idx = self.objects.len();
        self.objects.push(object);
        self.tree.insert(Rect::interval(lo, hi), idx);
        Ok(())
    }

    /// Remove an object by id, returning it if present. Uses the R-tree's
    /// condense-tree deletion; the vacated slot is backfilled by moving the
    /// last object (its index entry is re-keyed accordingly).
    pub fn remove(&mut self, id: ObjectId) -> Option<UncertainObject> {
        let idx = self.objects.iter().position(|o| o.id() == id)?;
        let (lo, hi) = self.objects[idx].region();
        self.tree
            .remove_one(&Rect::interval(lo, hi), |&i| i == idx)
            .expect("index entry exists for stored object");
        let removed = self.objects.swap_remove(idx);
        if idx < self.objects.len() {
            // The former last object now lives at `idx`: re-key its entry.
            let (mlo, mhi) = self.objects[idx].region();
            let moved_from = self.objects.len();
            self.tree
                .remove_one(&Rect::interval(mlo, mhi), |&i| i == moved_from)
                .expect("index entry exists for moved object");
            self.tree.insert(Rect::interval(mlo, mhi), idx);
        }
        Some(removed)
    }

    /// The extent of all uncertainty regions `[min, max]`, or `None` if
    /// empty.
    pub fn domain(&self) -> Option<(f64, f64)> {
        self.tree.mbr().map(|r| (r.min()[0], r.max()[0]))
    }

    /// Filtering phase: prune objects that cannot be the NN of `q`.
    fn filter(&self, q: f64) -> (Vec<&UncertainObject>, Duration) {
        let start = Instant::now();
        let (cands, _) = self.tree.pnn_candidates(&[q]);
        let out: Vec<&UncertainObject> =
            cands.into_iter().map(|c| &self.objects[*c.item]).collect();
        (out, start.elapsed())
    }

    /// Execute a C-PNN query with the given strategy.
    pub fn cpnn(&self, query: &CpnnQuery, strategy: Strategy) -> Result<CpnnResult> {
        if !query.q.is_finite() {
            return Err(CoreError::InvalidQueryPoint(query.q));
        }
        let classifier = Classifier::new(query.threshold, query.tolerance)?;

        let mut stats = QueryStats {
            total_objects: self.objects.len(),
            ..Default::default()
        };
        let (filtered, filter_time) = self.filter(query.q);
        stats.filter_time = filter_time;

        let init_start = Instant::now();
        let cands = CandidateSet::build(
            filtered.iter().copied(),
            query.q,
            self.config.max_distance_bins,
        )?;
        stats.candidates = cands.len();

        match strategy {
            Strategy::Basic => {
                stats.init_time = init_start.elapsed();
                let start = Instant::now();
                let (probs, evals) = basic_probabilities(&cands, self.config.basic_tolerance);
                stats.refine_time = start.elapsed();
                stats.integrations = evals;
                Ok(self.finish_exact(&cands, &classifier, probs, stats))
            }
            Strategy::MonteCarlo { worlds, seed } => {
                stats.init_time = init_start.elapsed();
                let start = Instant::now();
                let mut rng = StdRng::seed_from_u64(seed);
                let probs = monte_carlo_probabilities(&cands, worlds, &mut rng)?;
                stats.refine_time = start.elapsed();
                stats.integrations = worlds;
                Ok(self.finish_exact(&cands, &classifier, probs, stats))
            }
            Strategy::RefineOnly => {
                let table = SubregionTable::build(&cands);
                stats.init_time = init_start.elapsed();
                stats.subregions = table.subregion_count();
                let mut state = VerificationState::new(&table);
                let start = Instant::now();
                let report = incremental_refine(
                    &table,
                    &classifier,
                    &mut state,
                    self.config.refinement_order,
                );
                stats.refine_time = start.elapsed();
                stats.refined_objects = report.refined_objects;
                stats.integrations = report.integrations;
                Ok(Self::finish_state(&cands, state, stats))
            }
            Strategy::Verified => {
                let table = SubregionTable::build(&cands);
                stats.init_time = init_start.elapsed();
                stats.subregions = table.subregion_count();
                let verify_start = Instant::now();
                let chain = if self.config.extended_verifiers {
                    crate::framework::extended_verifiers()
                } else {
                    default_verifiers()
                };
                let outcome = run_verification(&table, &classifier, &chain);
                stats.verify_time = verify_start.elapsed();
                stats.resolved_by_verification = outcome.resolved();
                stats.stages = outcome.stages.clone();
                let mut state = outcome.state;
                let refine_start = Instant::now();
                let report = incremental_refine(
                    &table,
                    &classifier,
                    &mut state,
                    self.config.refinement_order,
                );
                stats.refine_time = refine_start.elapsed();
                stats.refined_objects = report.refined_objects;
                stats.integrations = report.integrations;
                Ok(Self::finish_state(&cands, state, stats))
            }
        }
    }

    /// Plain PNN: exact qualification probabilities for every candidate
    /// (via the subregion decomposition).
    pub fn pnn(&self, q: f64) -> Result<PnnResult> {
        if !q.is_finite() {
            return Err(CoreError::InvalidQueryPoint(q));
        }
        let mut stats = QueryStats {
            total_objects: self.objects.len(),
            ..Default::default()
        };
        let (filtered, filter_time) = self.filter(q);
        stats.filter_time = filter_time;
        let init_start = Instant::now();
        let cands =
            CandidateSet::build(filtered.iter().copied(), q, self.config.max_distance_bins)?;
        let table = SubregionTable::build(&cands);
        stats.candidates = cands.len();
        stats.subregions = table.subregion_count();
        stats.init_time = init_start.elapsed();
        let start = Instant::now();
        let (probs, integrations) = exact_probabilities(&table);
        stats.refine_time = start.elapsed();
        stats.integrations = integrations;
        let mut probabilities: Vec<(ObjectId, f64)> = cands
            .members()
            .iter()
            .zip(&probs)
            .map(|(m, &p)| (m.id, p))
            .collect();
        probabilities.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(PnnResult {
            probabilities,
            stats,
        })
    }

    /// Exact probabilistic k-NN: for every candidate, the probability of
    /// being among the `k` nearest neighbors of `q` (the paper's future-work
    /// query; see [`crate::knn`]). Probabilities sum to `min(k, |C|)`.
    pub fn pknn(&self, q: f64, k: usize) -> Result<PnnResult> {
        if !q.is_finite() {
            return Err(CoreError::InvalidQueryPoint(q));
        }
        let k = k.max(1);
        let mut stats = QueryStats {
            total_objects: self.objects.len(),
            ..Default::default()
        };
        let filter_start = Instant::now();
        let (raw, _) = self.tree.pnn_candidates_k(&[q], k);
        let filtered: Vec<&UncertainObject> =
            raw.into_iter().map(|c| &self.objects[*c.item]).collect();
        stats.filter_time = filter_start.elapsed();
        let init_start = Instant::now();
        let cands = CandidateSet::build_k(
            filtered.iter().copied(),
            q,
            self.config.max_distance_bins,
            k,
        )?;
        let table = SubregionTable::build(&cands);
        stats.candidates = cands.len();
        stats.subregions = table.subregion_count();
        stats.init_time = init_start.elapsed();
        let start = Instant::now();
        let probs = crate::knn::knn_probabilities(&table, k);
        stats.refine_time = start.elapsed();
        let mut probabilities: Vec<(ObjectId, f64)> = cands
            .members()
            .iter()
            .zip(&probs)
            .map(|(m, &p)| (m.id, p))
            .collect();
        probabilities.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(PnnResult {
            probabilities,
            stats,
        })
    }

    /// Constrained probabilistic k-NN (C-PkNN): objects whose probability
    /// of being among the `k` nearest clears the threshold, evaluated with
    /// the RS-k bound plus incremental exact refinement.
    pub fn cknn(&self, q: f64, k: usize, threshold: f64, tolerance: f64) -> Result<CpnnResult> {
        if !q.is_finite() {
            return Err(CoreError::InvalidQueryPoint(q));
        }
        let k = k.max(1);
        let classifier = Classifier::new(threshold, tolerance)?;
        let mut stats = QueryStats {
            total_objects: self.objects.len(),
            ..Default::default()
        };
        let filter_start = Instant::now();
        let (raw, _) = self.tree.pnn_candidates_k(&[q], k);
        let filtered: Vec<&UncertainObject> =
            raw.into_iter().map(|c| &self.objects[*c.item]).collect();
        stats.filter_time = filter_start.elapsed();
        let init_start = Instant::now();
        let cands = CandidateSet::build_k(
            filtered.iter().copied(),
            q,
            self.config.max_distance_bins,
            k,
        )?;
        let table = SubregionTable::build(&cands);
        stats.candidates = cands.len();
        stats.subregions = table.subregion_count();
        stats.init_time = init_start.elapsed();
        let start = Instant::now();
        let verdicts = crate::knn::constrained_knn(&table, &classifier, k);
        stats.refine_time = start.elapsed();
        stats.integrations = verdicts.iter().map(|v| v.integrations).sum();
        stats.refined_objects = verdicts.iter().filter(|v| v.integrations > 0).count();
        let reports: Vec<ObjectReport> = cands
            .members()
            .iter()
            .zip(&verdicts)
            .map(|(m, v)| ObjectReport {
                id: m.id,
                bound: v.bound,
                label: v.label,
            })
            .collect();
        Ok(Self::collect(reports, stats))
    }

    /// Evaluate a batch of C-PNN queries, optionally in parallel.
    ///
    /// The database is immutable and shared by reference across
    /// `threads` scoped worker threads; results come back in input order.
    /// `threads = 0` or `1` runs sequentially. Errors surface per query
    /// position.
    pub fn cpnn_batch(
        &self,
        queries: &[CpnnQuery],
        strategy: Strategy,
        threads: usize,
    ) -> Vec<Result<CpnnResult>> {
        let threads = threads.max(1).min(queries.len().max(1));
        if threads == 1 {
            return queries.iter().map(|q| self.cpnn(q, strategy)).collect();
        }
        let mut results: Vec<Option<Result<CpnnResult>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (qs, rs) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (q, slot) in qs.iter().zip(rs.iter_mut()) {
                        *slot = Some(self.cpnn(q, strategy));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot is filled by its worker"))
            .collect()
    }

    /// Minimum query (paper Sec. I): which object has the minimum value? A
    /// PNN with the query point left of every region.
    pub fn pnn_min(&self) -> Result<PnnResult> {
        let (lo, _) = self.domain().unwrap_or((0.0, 0.0));
        self.pnn(lo - 1.0)
    }

    /// Maximum query: which object has the maximum value? A PNN with the
    /// query point right of every region.
    pub fn pnn_max(&self) -> Result<PnnResult> {
        let (_, hi) = self.domain().unwrap_or((0.0, 0.0));
        self.pnn(hi + 1.0)
    }

    fn finish_exact(
        &self,
        cands: &CandidateSet,
        classifier: &Classifier,
        probs: Vec<f64>,
        stats: QueryStats,
    ) -> CpnnResult {
        let reports: Vec<ObjectReport> = cands
            .members()
            .iter()
            .zip(&probs)
            .map(|(m, &p)| {
                let bound = ProbBound::exact(p);
                ObjectReport {
                    id: m.id,
                    bound,
                    label: classifier.classify(&bound),
                }
            })
            .collect();
        Self::collect(reports, stats)
    }

    fn finish_state(
        cands: &CandidateSet,
        state: VerificationState,
        stats: QueryStats,
    ) -> CpnnResult {
        let reports: Vec<ObjectReport> = cands
            .members()
            .iter()
            .zip(state.bounds.iter().zip(&state.labels))
            .map(|(m, (&bound, &label))| ObjectReport {
                id: m.id,
                bound,
                label,
            })
            .collect();
        Self::collect(reports, stats)
    }

    fn collect(reports: Vec<ObjectReport>, stats: QueryStats) -> CpnnResult {
        let mut answers: Vec<ObjectId> = reports
            .iter()
            .filter(|r| r.label == Label::Satisfy)
            .map(|r| r.id)
            .collect();
        answers.sort_unstable();
        CpnnResult {
            answers,
            reports,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_scenario, fig7_scenario};

    fn fig7_db() -> UncertainDb {
        let (_, objects) = fig7_scenario();
        UncertainDb::build(objects).unwrap()
    }

    #[test]
    fn duplicate_ids_rejected() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(1), 0.0, 1.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 2.0, 3.0).unwrap(),
        ];
        assert!(matches!(
            UncertainDb::build(objects),
            Err(CoreError::DuplicateObjectId(1))
        ));
    }

    #[test]
    fn all_strategies_agree_on_answers() {
        let db = fig7_db();
        for p in [0.05, 0.1, 0.3, 0.45, 0.5, 0.7, 0.9] {
            let query = CpnnQuery::new(0.0, p, 0.0);
            let basic = db.cpnn(&query, Strategy::Basic).unwrap();
            let refine = db.cpnn(&query, Strategy::RefineOnly).unwrap();
            let vr = db.cpnn(&query, Strategy::Verified).unwrap();
            assert_eq!(basic.answers, refine.answers, "P = {p}");
            assert_eq!(basic.answers, vr.answers, "P = {p}");
        }
    }

    #[test]
    fn monte_carlo_agrees_away_from_threshold() {
        let db = fig7_db();
        // Thresholds far from the exact probabilities {.464, .485, .051}.
        for p in [0.2, 0.7] {
            let query = CpnnQuery::new(0.0, p, 0.0);
            let exact = db.cpnn(&query, Strategy::Basic).unwrap();
            let mc = db
                .cpnn(
                    &query,
                    Strategy::MonteCarlo {
                        worlds: 20_000,
                        seed: 99,
                    },
                )
                .unwrap();
            assert_eq!(exact.answers, mc.answers, "P = {p}");
        }
    }

    #[test]
    fn verified_strategy_reports_stage_progress() {
        let db = fig7_db();
        let query = CpnnQuery::new(0.0, 0.45, 0.0);
        let res = db.cpnn(&query, Strategy::Verified).unwrap();
        assert_eq!(res.stats.stages.len(), 3);
        assert!(!res.stats.resolved_by_verification);
        assert_eq!(res.stats.refined_objects, 2);
        // Exact probabilities: .464 and .485 ≥ .45 → two answers.
        assert_eq!(res.answers.len(), 2);
    }

    #[test]
    fn verification_alone_resolves_high_thresholds() {
        let db = fig7_db();
        let query = CpnnQuery::new(0.0, 0.6, 0.0);
        let res = db.cpnn(&query, Strategy::Verified).unwrap();
        assert!(res.stats.resolved_by_verification);
        assert_eq!(res.stats.refined_objects, 0);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn pnn_returns_descending_probabilities_summing_to_one() {
        let db = fig7_db();
        let res = db.pnn(0.0).unwrap();
        let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in res.probabilities.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(res.probabilities[0].0, ObjectId(2)); // X2 = .485
    }

    #[test]
    fn fig2_style_scenario_has_sensible_shape() {
        let (objects, q) = fig2_scenario();
        let db = UncertainDb::build(objects).unwrap();
        let res = db.pnn(q).unwrap();
        let by_id = |id: u64| {
            res.probabilities
                .iter()
                .find(|(o, _)| o.0 == id)
                .map(|(_, p)| *p)
                .unwrap_or(0.0)
        };
        // Paper Fig. 2: B = 41%, D = 29%, A = 20%, C = 10%. Our analytic
        // geometry lands at (41.0, 28.9, 18.9, 11.3)%.
        assert!((by_id(1) - 0.41).abs() < 0.01, "B = {}", by_id(1));
        assert!((by_id(3) - 0.29).abs() < 0.01, "D = {}", by_id(3));
        assert!((by_id(0) - 0.20).abs() < 0.02, "A = {}", by_id(0));
        assert!((by_id(2) - 0.10).abs() < 0.02, "C = {}", by_id(2));
        let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_and_max_queries_are_pnn_special_cases() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 0.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap(),
            UncertainObject::uniform(ObjectId(2), 10.0, 11.0).unwrap(),
        ];
        let db = UncertainDb::build(objects).unwrap();
        let min = db.pnn_min().unwrap();
        // Object 2 can never be the minimum.
        assert!(min.probabilities.iter().all(|(id, _)| id.0 != 2));
        assert_eq!(min.probabilities[0].0, ObjectId(0));
        let max = db.pnn_max().unwrap();
        assert_eq!(max.probabilities[0].0, ObjectId(2));
        assert!((max.probabilities[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pknn_sums_to_k_and_k1_matches_pnn() {
        let db = fig7_db();
        let p1 = db.pknn(0.0, 1).unwrap();
        let pnn = db.pnn(0.0).unwrap();
        for ((a, pa), (b, pb)) in p1.probabilities.iter().zip(&pnn.probabilities) {
            assert_eq!(a, b);
            assert!((pa - pb).abs() < 1e-9);
        }
        let p2 = db.pknn(0.0, 2).unwrap();
        let total: f64 = p2.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 2.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn cknn_matches_exact_thresholding() {
        let db = fig7_db();
        let exact = db.pknn(0.0, 2).unwrap();
        for threshold in [0.4, 0.7, 0.95] {
            let res = db.cknn(0.0, 2, threshold, 0.0).unwrap();
            let mut want: Vec<ObjectId> = exact
                .probabilities
                .iter()
                .filter(|(_, p)| *p >= threshold)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(res.answers, want, "P = {threshold}");
        }
    }

    #[test]
    fn cknn_keeps_objects_the_1nn_filter_would_prune() {
        // X2's near point (4) exceeds fmin_1 (= 2), so it is not a 1-NN
        // candidate — but it is a 2-NN candidate.
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 1.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 4.0, 6.0).unwrap(),
        ];
        let db = UncertainDb::build(objects).unwrap();
        let p1 = db.pknn(0.0, 1).unwrap();
        assert_eq!(p1.probabilities.len(), 1);
        let p2 = db.pknn(0.0, 2).unwrap();
        assert_eq!(p2.probabilities.len(), 2);
        for (_, p) in &p2.probabilities {
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tolerance_widens_the_answer_set_monotonically() {
        let db = fig7_db();
        let strict = db
            .cpnn(&CpnnQuery::new(0.0, 0.47, 0.0), Strategy::Verified)
            .unwrap();
        let loose = db
            .cpnn(&CpnnQuery::new(0.0, 0.47, 0.25), Strategy::Verified)
            .unwrap();
        for id in &strict.answers {
            assert!(loose.answers.contains(id));
        }
    }

    #[test]
    fn insert_and_remove_keep_queries_consistent() {
        let (_, objects) = fig7_scenario();
        let mut db = UncertainDb::build(objects.clone()).unwrap();
        // Insert a new dominating object right next to q = 0.
        db.insert(UncertainObject::uniform(ObjectId(99), 0.1, 0.2).unwrap())
            .unwrap();
        assert_eq!(db.len(), 4);
        let res = db.pnn(0.0).unwrap();
        assert_eq!(res.probabilities[0].0, ObjectId(99));
        assert!((res.probabilities[0].1 - 1.0).abs() < 1e-9);
        // Remove it again: results must match a fresh build.
        let removed = db.remove(ObjectId(99)).unwrap();
        assert_eq!(removed.id(), ObjectId(99));
        let fresh = UncertainDb::build(objects).unwrap();
        let a = db.pnn(0.0).unwrap();
        let b = fresh.pnn(0.0).unwrap();
        assert_eq!(a.probabilities.len(), b.probabilities.len());
        for ((ida, pa), (idb, pb)) in a.probabilities.iter().zip(&b.probabilities) {
            assert_eq!(ida, idb);
            assert!((pa - pb).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_backfills_swapped_index() {
        // Removing a middle object must re-key the moved last object, or
        // later queries would resolve the wrong index.
        let objects: Vec<UncertainObject> = (0..6)
            .map(|i| {
                UncertainObject::uniform(ObjectId(i), i as f64 * 10.0, i as f64 * 10.0 + 1.0)
                    .unwrap()
            })
            .collect();
        let mut db = UncertainDb::build(objects).unwrap();
        assert!(db.remove(ObjectId(2)).is_some());
        assert!(db.remove(ObjectId(0)).is_some());
        assert_eq!(db.len(), 4);
        assert!(db.remove(ObjectId(2)).is_none());
        // Each survivor is still individually findable as certain NN.
        for id in [1u64, 3, 4, 5] {
            let q = id as f64 * 10.0 + 0.5;
            let res = db.pnn(q).unwrap();
            assert_eq!(res.probabilities[0].0, ObjectId(id), "query at {q}");
        }
    }

    #[test]
    fn insert_duplicate_id_rejected() {
        let (_, objects) = fig7_scenario();
        let mut db = UncertainDb::build(objects).unwrap();
        let dup = UncertainObject::uniform(ObjectId(1), 0.0, 1.0).unwrap();
        assert!(matches!(
            db.insert(dup),
            Err(CoreError::DuplicateObjectId(1))
        ));
    }

    #[test]
    fn batch_matches_sequential_and_is_order_preserving() {
        let db = fig7_db();
        let queries: Vec<CpnnQuery> = (0..12)
            .map(|i| CpnnQuery::new(i as f64 * 0.5, 0.3, 0.01))
            .collect();
        let seq = db.cpnn_batch(&queries, Strategy::Verified, 1);
        let par = db.cpnn_batch(&queries, Strategy::Verified, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(
                s.as_ref().unwrap().answers,
                p.as_ref().unwrap().answers
            );
        }
    }

    #[test]
    fn batch_reports_per_query_errors() {
        let db = fig7_db();
        let queries = vec![
            CpnnQuery::new(0.0, 0.3, 0.01),
            CpnnQuery::new(f64::NAN, 0.3, 0.01),
        ];
        let res = db.cpnn_batch(&queries, Strategy::Verified, 2);
        assert!(res[0].is_ok());
        assert!(res[1].is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = fig7_db();
        assert!(db
            .cpnn(&CpnnQuery::new(f64::NAN, 0.3, 0.0), Strategy::Verified)
            .is_err());
        assert!(db
            .cpnn(&CpnnQuery::new(0.0, 0.0, 0.0), Strategy::Verified)
            .is_err());
        assert!(db
            .cpnn(&CpnnQuery::new(0.0, 0.3, 2.0), Strategy::Verified)
            .is_err());
        assert!(db.pnn(f64::INFINITY).is_err());
    }

    #[test]
    fn empty_database_yields_empty_results() {
        let db = UncertainDb::build(Vec::new()).unwrap();
        let res = db
            .cpnn(&CpnnQuery::new(0.0, 0.3, 0.0), Strategy::Verified)
            .unwrap();
        assert!(res.answers.is_empty());
        assert!(res.reports.is_empty());
        assert_eq!(res.stats.candidates, 0);
    }
}
