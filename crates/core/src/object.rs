//! Uncertain objects: the paper's attribute-uncertainty data model.

use cpnn_pdf::{discretize, HistogramPdf, Pdf, TruncatedGaussian, UniformPdf};

use crate::error::Result;

/// Opaque object identifier (the "ID" a C-PNN returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A one-dimensional uncertain object: an id plus an uncertainty region with
/// a pdf, stored canonically as a histogram (the paper's representation for
/// arbitrary pdfs, Sec. IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainObject {
    id: ObjectId,
    pdf: HistogramPdf,
}

impl UncertainObject {
    /// Wrap an arbitrary histogram pdf.
    pub fn from_histogram(id: ObjectId, pdf: HistogramPdf) -> Self {
        Self { id, pdf }
    }

    /// Uniform uncertainty on `[lo, hi]` — the Long Beach configuration
    /// (Sec. V-A). Represented exactly as a single-bar histogram.
    pub fn uniform(id: ObjectId, lo: f64, hi: f64) -> Result<Self> {
        let _ = UniformPdf::new(lo, hi)?; // validate the region
        Ok(Self {
            id,
            pdf: HistogramPdf::uniform(lo, hi)?,
        })
    }

    /// Gaussian uncertainty on `[lo, hi]` in the paper's configuration
    /// (mean at the center, `σ = width/6`), discretized into `bars` bars
    /// (the paper uses 300).
    pub fn gaussian(id: ObjectId, lo: f64, hi: f64, bars: usize) -> Result<Self> {
        let g = TruncatedGaussian::paper_default(lo, hi)?;
        Ok(Self {
            id,
            pdf: discretize(&g, bars)?,
        })
    }

    /// The object's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The uncertainty region `[lo, hi]`.
    pub fn region(&self) -> (f64, f64) {
        self.pdf.support()
    }

    /// The histogram pdf.
    pub fn pdf(&self) -> &HistogramPdf {
        &self.pdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_object_has_flat_density() {
        let o = UncertainObject::uniform(ObjectId(1), 2.0, 4.0).unwrap();
        assert_eq!(o.id(), ObjectId(1));
        assert_eq!(o.region(), (2.0, 4.0));
        assert_eq!(o.pdf().bar_count(), 1);
        assert!((o.pdf().density(3.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn gaussian_object_uses_requested_bars() {
        let o = UncertainObject::gaussian(ObjectId(2), 0.0, 6.0, 300).unwrap();
        assert_eq!(o.pdf().bar_count(), 300);
        // Mass concentrated at the center (σ = 1 here).
        assert!(o.pdf().mass_between(2.0, 4.0) > 0.68);
    }

    #[test]
    fn invalid_regions_rejected() {
        assert!(UncertainObject::uniform(ObjectId(0), 1.0, 1.0).is_err());
        assert!(UncertainObject::gaussian(ObjectId(0), 5.0, 1.0, 10).is_err());
    }

    #[test]
    fn object_id_displays_like_the_paper() {
        assert_eq!(ObjectId(3).to_string(), "X3");
    }
}
