//! The verification framework (paper Fig. 5): run verifiers in ascending
//! cost order, classify after each, stop as soon as every object is decided.

use std::time::{Duration, Instant};

use crate::classify::{Classifier, Label};
use crate::subregion::SubregionTable;
use crate::verifiers::{
    LowerSubregion, RightmostSubregion, UpperSubregion, VerificationState, Verifier,
};

/// Outcome of one verifier stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Verifier name ("RS", "L-SR", "U-SR").
    pub name: &'static str,
    /// Objects still `Unknown` after this stage's classification.
    pub unknown_after: usize,
    /// Wall-clock time of the stage (bound tightening + classification).
    pub duration: Duration,
}

/// Outcome of the whole verification phase.
#[derive(Debug, Clone)]
pub struct VerificationOutcome {
    /// Final state (bounds, labels, per-subregion qualification bounds).
    pub state: VerificationState,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
}

impl VerificationOutcome {
    /// True when no object is left `Unknown` (the query finished during
    /// verification — Fig. 13 measures how often this happens).
    pub fn resolved(&self) -> bool {
        self.state.unknown_count() == 0
    }
}

/// The paper's default verifier chain, in ascending running-cost order.
pub fn default_verifiers() -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(RightmostSubregion),
        Box::new(LowerSubregion),
        Box::new(UpperSubregion),
    ]
}

/// Extended chain including the [`crate::verifiers::FarLowerSubregion`]
/// verifier (an extra
/// lower-bound pass beyond the paper; see its module docs). Strictly at
/// least as tight as [`default_verifiers`], one more `O(|C|·M)` pass.
pub fn extended_verifiers() -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(RightmostSubregion),
        Box::new(LowerSubregion),
        Box::new(crate::verifiers::FarLowerSubregion),
        Box::new(UpperSubregion),
    ]
}

/// The k-NN verifier chain: RS (unchanged — mass beyond the `k`-horizon
/// never qualifies) followed by the Poisson-binomial subregion verifier
/// ([`crate::knn::KnnSubregion`], the L-SR/U-SR analogue for `k > 1`).
pub fn knn_verifiers(k: usize) -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(RightmostSubregion),
        Box::new(crate::knn::KnnSubregion::new(k)),
    ]
}

/// Classify every `Unknown` object against its current bound.
pub fn classify_all(classifier: &Classifier, state: &mut VerificationState) {
    for i in 0..state.labels.len() {
        if state.labels[i] == Label::Unknown {
            state.labels[i] = classifier.classify(&state.bounds[i]);
        }
    }
}

/// Run `verifiers` over the table, classifying after each; stops early once
/// all objects are decided.
pub fn run_verification(
    table: &SubregionTable,
    classifier: &Classifier,
    verifiers: &[Box<dyn Verifier>],
) -> VerificationOutcome {
    let mut state = VerificationState::new(table);
    let mut stages = Vec::with_capacity(verifiers.len());
    run_verification_into(table, classifier, verifiers, &mut state, &mut stages);
    VerificationOutcome { state, stages }
}

/// [`run_verification`] writing into caller-owned state and stage buffers —
/// the allocation-free form the batch executor drives with per-thread
/// scratch. `state` must already be [`VerificationState::reset`] for
/// `table`; `stages` is appended to.
pub fn run_verification_into(
    table: &SubregionTable,
    classifier: &Classifier,
    verifiers: &[Box<dyn Verifier>],
    state: &mut VerificationState,
    stages: &mut Vec<StageReport>,
) {
    for v in verifiers {
        let start = Instant::now();
        v.apply(table, state);
        classify_all(classifier, state);
        stages.push(StageReport {
            name: v.name(),
            unknown_after: state.unknown_count(),
            duration: start.elapsed(),
        });
        if state.unknown_count() == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subregion::SubregionTable;
    use crate::testutil::{fig7_exact, fig7_scenario};

    #[test]
    fn pipeline_tightens_bounds_monotonically_and_contains_exact() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.3, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(
                outcome.state.bounds[i].contains(*p, 1e-9),
                "object {i}: {} vs {p}",
                outcome.state.bounds[i]
            );
        }
    }

    #[test]
    fn high_threshold_resolves_without_refinement() {
        // P = 0.6: all three upper bounds (.478, .5, .066) fall below it.
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.6, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        assert!(outcome.resolved());
        assert!(outcome.state.labels.iter().all(|&l| l == Label::Fail));
    }

    #[test]
    fn low_threshold_accepts_via_lsr_lower_bound() {
        // P = 0.2: L-SR proves X1 (.349) and X2 (.281) exceed it; X3's upper
        // bound (.066) fails it.
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.2, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        assert!(outcome.resolved());
        assert_eq!(outcome.state.labels[0], Label::Satisfy);
        assert_eq!(outcome.state.labels[1], Label::Satisfy);
        assert_eq!(outcome.state.labels[2], Label::Fail);
    }

    #[test]
    fn ambiguous_threshold_leaves_unknowns() {
        // P = 0.45 sits inside X1's bound [.349, .478] and X2's [.281, .5].
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.45, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        assert!(!outcome.resolved());
        assert_eq!(outcome.state.labels[2], Label::Fail);
        assert_eq!(outcome.state.unknown_count(), 2);
        // All three stages ran.
        assert_eq!(outcome.stages.len(), 3);
        let names: Vec<_> = outcome.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["RS", "L-SR", "U-SR"]);
    }

    #[test]
    fn stage_reports_are_monotone_in_unknowns() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.45, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        let unknowns: Vec<usize> = outcome.stages.iter().map(|s| s.unknown_after).collect();
        for w in unknowns.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn generous_tolerance_short_circuits() {
        // Δ = 1: every bound has width ≤ Δ, so the first verifier decides all
        // (u ≥ P → satisfy, else fail).
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.3, 1.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        assert!(outcome.resolved());
        assert_eq!(outcome.stages.len(), 1);
        assert_eq!(outcome.stages[0].name, "RS");
    }
}
