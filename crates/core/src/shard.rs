//! Domain-partitioned sharded storage: [`ShardedDb`] splits an uncertain
//! database into shards along its domain and fans each query out only to
//! the shards that can matter.
//!
//! The paper's filter → verify → refine pipeline partitions cleanly by
//! domain: filtering prunes against a *horizon* (the `k`-th smallest far
//! point, Sec. III / IV-A), so a query only ever needs the shards whose
//! extents intersect that horizon. Concretely:
//!
//! * **partitioning** — objects are assigned to `N` slabs of the
//!   build-time domain along its widest axis (1-D: domain intervals;
//!   2-D: bounding-box tiles), keyed by the center of their uncertainty
//!   region. Slab boundaries come from either scheme of [`ShardBalance`]:
//!   equal-**width** slabs (the default) or equal-**count** quantiles of
//!   the object centers, which keeps shard populations balanced under
//!   clustered data (Long Beach clustering makes the widest equal-width
//!   shard ~2.4× the mean). Each shard is a complete [`ShardableModel`] —
//!   it owns its own objects *and its own R-tree* — so the single-shard
//!   case is literally `shards = 1`, with no second code path.
//! * **fan-out** — [`ShardedDb::overlapping`] selects the shards a query
//!   must visit (a static horizon bound from shard MBRs), and
//!   [`crate::pipeline::fan_out_filter`] merges their survivor sets while
//!   tightening the horizon incrementally. The merged candidates then run
//!   through the *shared* verify/refine flow once — results are provably
//!   identical to unsharded evaluation (see the equivalence argument on
//!   [`fan_out_filter`](crate::pipeline::fan_out_filter) and
//!   `tests/proptest_shard.rs`).
//! * **per-shard path-copying** — every shard sits behind an [`Arc`];
//!   [`CowModel::with_inserted`] / [`CowModel::with_removed`] **path-copy
//!   only the owning shard** (O(log |shard|) via the persistent store —
//!   see [`crate::store`]) and share every other shard `Arc`, which is
//!   what turns [`crate::server::QueryServer`] updates from rebuilds into
//!   structural edits.
//!
//! ```
//! use cpnn_core::{CpnnQuery, ObjectId, ShardedDb, Strategy, UncertainDb, UncertainObject};
//!
//! let objects: Vec<UncertainObject> = (0..100)
//!     .map(|i| UncertainObject::uniform(ObjectId(i), i as f64, i as f64 + 1.5).unwrap())
//!     .collect();
//! let sharded = ShardedDb::<UncertainDb>::build(objects, Default::default(), 4).unwrap();
//! assert_eq!(sharded.num_shards(), 4);
//! let res = sharded
//!     .cpnn(&CpnnQuery::new(10.2, 0.3, 0.01), Strategy::Verified)
//!     .unwrap();
//! assert_eq!(res.answers, vec![ObjectId(9), ObjectId(10)]);
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::engine::{CpnnQuery, CpnnResult, PnnResult, Strategy};
use crate::error::{CoreError, Result};
use crate::object::ObjectId;
use crate::pipeline::{self, DistanceModel, Filtered, PipelineConfig, QuerySpec};
use crate::store::CowModel;

/// Axis-aligned extent (a minimum bounding box) of a set of objects, in
/// the model's native dimension — the only geometry sharding needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Extent {
    /// Per-axis minima.
    pub lo: Vec<f64>,
    /// Per-axis maxima.
    pub hi: Vec<f64>,
}

impl Extent {
    /// An extent from per-axis bounds (`lo.len()` = dimension).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        Self { lo, hi }
    }

    /// Dimension count.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// The smallest extent covering both `self` and `other`.
    pub fn union(mut self, other: &Extent) -> Extent {
        for a in 0..self.lo.len() {
            self.lo[a] = self.lo[a].min(other.lo[a]);
            self.hi[a] = self.hi[a].max(other.hi[a]);
        }
        self
    }

    /// Midpoint along `axis` (the partitioning key).
    pub fn center(&self, axis: usize) -> f64 {
        0.5 * (self.lo[axis] + self.hi[axis])
    }

    /// Euclidean distance from `p` to the nearest point of the extent
    /// (0 when `p` is inside) — a lower bound on the near distance of
    /// every object the extent covers.
    pub fn mindist<P: ShardPoint>(&self, p: &P) -> f64 {
        (0..self.lo.len())
            .map(|a| {
                let c = p.coord(a);
                let d = (self.lo[a] - c).max(c - self.hi[a]).max(0.0);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Euclidean distance from `p` to the farthest point of the extent —
    /// an upper bound on the far distance of every object it covers.
    pub fn maxdist<P: ShardPoint>(&self, p: &P) -> f64 {
        (0..self.lo.len())
            .map(|a| {
                let c = p.coord(a);
                let d = (c - self.lo[a]).abs().max((self.hi[a] - c).abs());
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Query-point types that can measure distances to an axis-aligned
/// [`Extent`]. Implemented for the pipeline's query points (`f64`,
/// `[f64; 2]`); sharding needs nothing else from the geometry — the
/// extent itself knows its dimension.
pub trait ShardPoint: Copy {
    /// The `axis`-th coordinate.
    fn coord(&self, axis: usize) -> f64;
}

impl ShardPoint for f64 {
    fn coord(&self, _axis: usize) -> f64 {
        *self
    }
}

impl ShardPoint for [f64; 2] {
    fn coord(&self, axis: usize) -> f64 {
        self[axis]
    }
}

/// Dimension-erased coordinates (the verification cache stores query
/// points this way for incremental invalidation).
impl ShardPoint for &[f64] {
    fn coord(&self, axis: usize) -> f64 {
        self[axis]
    }
}

/// How slab boundaries along the partitioning axis are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBalance {
    /// Equal-width slabs of the build-time domain (the original scheme).
    /// Simple and stable, but clustered data skews shard populations.
    #[default]
    Width,
    /// Equal-count slabs: boundaries at the quantiles of the object
    /// centers along the partitioning axis, so every shard starts with
    /// (nearly) the same number of objects regardless of clustering.
    Quantile,
}

impl ShardBalance {
    /// Parse a CLI name (`width` | `quantile`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "width" => Some(Self::Width),
            "quantile" => Some(Self::Quantile),
            _ => None,
        }
    }
}

/// A [`DistanceModel`] that a [`ShardedDb`] can partition by domain: a
/// [`CowModel`] (copy-on-write successors, id membership, per-object
/// extents) that additionally exposes its stored objects and can rebuild
/// itself over any subset (each shard is one such build, with its own
/// index).
///
/// Implementations: [`crate::engine::UncertainDb`] (1-D intervals) and
/// [`crate::engine2d::UncertainDb2d`] (2-D bounding boxes).
pub trait ShardableModel: DistanceModel + CowModel {
    /// Tuning configuration, shared by every shard.
    type Config: Clone;

    /// The model's configuration (propagated to each shard on build).
    fn shard_config(&self) -> Self::Config;
    /// A copy of the stored objects (used for shard builds/re-shards).
    fn shard_objects(&self) -> Vec<Self::Object>;
    /// Build one shard — a complete model with its own index — over
    /// `objects`.
    fn build_shard(objects: Vec<Self::Object>, config: &Self::Config) -> Result<Self>;
    /// The exact extent of the stored objects (`None` when empty) — kept
    /// current by the persistent index across updates, so shard routing
    /// never works from stale bounds.
    fn model_extent(&self) -> Option<Extent>;
    /// The pipeline-level slice of the model's configuration.
    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig::default()
    }
}

/// A domain-partitioned database of uncertain objects: `N` shards, each a
/// complete [`ShardableModel`] behind an [`Arc`]. See the [module
/// docs](self) for the partitioning schemes, fan-out, and per-shard
/// path-copying semantics.
#[derive(Debug)]
pub struct ShardedDb<M: ShardableModel> {
    shards: Vec<Arc<M>>,
    /// Partitioning axis: the widest axis of the build-time domain.
    axis: usize,
    /// `shards.len() + 1` ascending slab boundaries along `axis`; inserts
    /// route by region center, clamped into the outer slabs.
    bounds: Vec<f64>,
    config: M::Config,
}

/// Cheap: clones the per-shard [`Arc`]s, not the shards.
impl<M: ShardableModel> Clone for ShardedDb<M> {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            axis: self.axis,
            bounds: self.bounds.clone(),
            config: self.config.clone(),
        }
    }
}

impl<M: ShardableModel> ShardedDb<M> {
    /// Partition `objects` into `shards` equal-width domain slabs and
    /// build one model per slab. `shards = 0` is treated as 1; fails on
    /// duplicate object ids (checked across the whole database).
    pub fn build(objects: Vec<M::Object>, config: M::Config, shards: usize) -> Result<Self> {
        Self::build_with(objects, config, shards, ShardBalance::Width)
    }

    /// Partition with an explicit balancing scheme (see [`ShardBalance`]).
    pub fn build_with(
        objects: Vec<M::Object>,
        config: M::Config,
        shards: usize,
        balance: ShardBalance,
    ) -> Result<Self> {
        let n = shards.max(1);
        let mut ids: Vec<u64> = objects.iter().map(|o| M::object_id(o).0).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(CoreError::DuplicateObjectId(w[0]));
        }
        // Widest axis of the global extent is the partitioning axis.
        let global = objects
            .iter()
            .map(M::object_extent)
            .reduce(|a, b| a.union(&b));
        let (axis, lo, hi) = match &global {
            Some(e) => {
                let axis = (0..e.dims())
                    .max_by(|&a, &b| (e.hi[a] - e.lo[a]).total_cmp(&(e.hi[b] - e.lo[b])))
                    .unwrap_or(0);
                (axis, e.lo[axis], e.hi[axis])
            }
            None => (0, 0.0, 0.0),
        };
        let bounds = match balance {
            ShardBalance::Width => {
                let width = (hi - lo).max(0.0);
                (0..=n)
                    .map(|i| {
                        if i == n {
                            hi
                        } else {
                            lo + width * i as f64 / n as f64
                        }
                    })
                    .collect()
            }
            ShardBalance::Quantile => {
                // Interior boundaries at the object-center quantiles: slab
                // i holds (roughly) centers of rank [i·|T|/N, (i+1)·|T|/N).
                let mut centers: Vec<f64> = objects
                    .iter()
                    .map(|o| M::object_extent(o).center(axis))
                    .collect();
                centers.sort_by(f64::total_cmp);
                let mut bounds = Vec::with_capacity(n + 1);
                bounds.push(lo);
                for i in 1..n {
                    let rank = (i * centers.len()) / n;
                    bounds.push(centers.get(rank).copied().unwrap_or(hi));
                }
                bounds.push(hi);
                // Quantiles of clustered data can repeat; keep the
                // boundary list non-decreasing so slab routing stays a
                // partition point (duplicate boundaries yield empty slabs,
                // which the fan-out skips for free).
                for i in 1..bounds.len() {
                    if bounds[i] < bounds[i - 1] {
                        bounds[i] = bounds[i - 1];
                    }
                }
                bounds
            }
        };
        let mut buckets: Vec<Vec<M::Object>> = (0..n).map(|_| Vec::new()).collect();
        for o in objects {
            let slab = slab_of(&bounds, M::object_extent(&o).center(axis));
            buckets[slab].push(o);
        }
        let shards = buckets
            .into_iter()
            .map(|b| M::build_shard(b, &config).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            axis,
            bounds,
            config,
        })
    }

    /// Re-shard an existing model's objects into `shards` equal-width
    /// slabs, keeping its configuration. `shards = 1` wraps the same
    /// contents in a single shard.
    pub fn from_model(model: &M, shards: usize) -> Result<Self> {
        Self::build(model.shard_objects(), model.shard_config(), shards)
    }

    /// Re-shard with an explicit balancing scheme.
    pub fn from_model_with(model: &M, shards: usize, balance: ShardBalance) -> Result<Self> {
        Self::build_with(model.shard_objects(), model.shard_config(), shards, balance)
    }

    /// Number of shards (always at least 1; empty shards are kept so slab
    /// routing stays stable).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Objects stored per shard, in slab order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.total_objects()).collect()
    }

    /// Total objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.total_objects()).sum()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard models, in slab order (the shard-aware batch executor
    /// filters against them directly).
    pub fn shard_model(&self, shard: usize) -> &M {
        &self.shards[shard]
    }

    /// The pipeline configuration the shards evaluate under.
    pub fn pipeline_config(&self) -> PipelineConfig {
        self.shards[0].pipeline_config()
    }

    /// The partitioning axis (the widest axis of the build-time domain).
    pub fn partition_axis(&self) -> usize {
        self.axis
    }

    /// The ascending slab boundaries along the partition axis
    /// (`num_shards() + 1` values).
    pub fn slab_bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The configuration every shard was built with.
    pub fn shard_configuration(&self) -> &M::Config {
        &self.config
    }

    /// Reassemble a sharded database from persisted parts: the partition
    /// `axis`, the slab boundary list (`buckets.len() + 1` finite,
    /// non-decreasing values), and each slab's objects in slab order.
    ///
    /// This is the recovery entry point ([`crate::persist`] /
    /// [`crate::storage`]): the persisted boundaries are adopted **as
    /// is**, rather than re-derived from the recovered objects, so slab
    /// routing after recovery is bit-identical to the pre-crash database
    /// even when serve-lane churn has drifted the contents away from the
    /// build-time distribution.
    pub fn from_parts(
        axis: usize,
        bounds: Vec<f64>,
        buckets: Vec<Vec<M::Object>>,
        config: M::Config,
    ) -> Result<Self> {
        if buckets.is_empty() || bounds.len() != buckets.len() + 1 {
            return Err(CoreError::Storage(format!(
                "malformed shard layout: {} boundaries for {} shards",
                bounds.len(),
                buckets.len()
            )));
        }
        if axis > 8 {
            return Err(CoreError::Storage(format!(
                "malformed shard layout: implausible partition axis {axis}"
            )));
        }
        if bounds.iter().any(|b| !b.is_finite()) || bounds.windows(2).any(|w| w[1] < w[0]) {
            return Err(CoreError::Storage(
                "malformed shard layout: slab boundaries not finite and non-decreasing".into(),
            ));
        }
        let mut ids: Vec<u64> = buckets
            .iter()
            .flatten()
            .map(|o| M::object_id(o).0)
            .collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(CoreError::DuplicateObjectId(w[0]));
        }
        let shards = buckets
            .into_iter()
            .map(|b| M::build_shard(b, &config).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            axis,
            bounds,
            config,
        })
    }

    /// Union of all shard extents (the database's domain MBR), `None`
    /// when empty.
    pub fn extent(&self) -> Option<Extent> {
        self.shards
            .iter()
            .filter_map(|s| s.model_extent())
            .reduce(|a, b| a.union(&b))
    }

    /// Which slab an object with partition-key `center` belongs to.
    fn route(&self, object: &M::Object) -> usize {
        slab_of(&self.bounds, M::object_extent(object).center(self.axis))
    }

    /// Insert an object in place, path-copying only the owning shard (the
    /// other shard `Arc`s are untouched; clones of this handle keep the
    /// old snapshot). Fails on a duplicate id anywhere in the database.
    pub fn insert(&mut self, object: M::Object) -> Result<()> {
        let id = M::object_id(&object);
        if self.shards.iter().any(|s| s.contains_id(id)) {
            return Err(CoreError::DuplicateObjectId(id.0));
        }
        let target = self.route(&object);
        self.shards[target] = Arc::new(self.shards[target].with_inserted(object)?);
        Ok(())
    }

    /// Remove an object by id in place, path-copying only the shard that
    /// stored it. Returns the removed object, or `None` if the id was
    /// absent.
    pub fn remove(&mut self, id: ObjectId) -> Option<M::Object> {
        let shard = self.shards.iter().position(|s| s.contains_id(id))?;
        let (next, removed) = self.shards[shard].with_removed(id);
        self.shards[shard] = Arc::new(next);
        removed
    }

    /// The shards a query must visit, as `(mindist, shard)` pairs sorted
    /// ascending by distance bound (ties by shard index).
    ///
    /// Selection is a static horizon argument: sort shards by
    /// `maxdist(q, MBR)`; once the visited shards hold at least `k`
    /// objects, that maxdist `H₀` upper-bounds the true candidate horizon
    /// (those `k` objects all have far points within `H₀`), so any shard
    /// with `mindist > H₀` cannot contribute a candidate. The sequential
    /// path tightens further per shard inside
    /// [`pipeline::fan_out_filter`]; the batch path uses this list as its
    /// fixed work-unit set.
    pub fn overlapping(&self, q: &M::Query, k: usize) -> Vec<(f64, usize)>
    where
        M::Query: ShardPoint,
    {
        let summaries: Vec<(Option<Extent>, usize)> = self
            .shards
            .iter()
            .map(|s| (s.model_extent(), s.total_objects()))
            .collect();
        select_overlapping(&summaries, q, k)
    }
}

/// Shard selection over `(extent, object count)` summaries — the shared
/// core of [`ShardedDb::overlapping`] and the socket router's fan-out
/// pruning (`cpnn-router`), which runs the **same algorithm** over
/// summaries reported by remote shard processes so that routed and local
/// queries visit identical shard sets in an identical order.
///
/// `shards[i]` describes shard `i`: its exact extent (`None` when empty —
/// empty shards are never selected) and its object count. Returns the
/// `(mindist, shard index)` pairs a `k`-NN query at `q` must visit,
/// sorted ascending by distance bound (ties by shard index). See
/// [`ShardedDb::overlapping`] for the horizon argument.
pub fn select_overlapping<P: ShardPoint>(
    shards: &[(Option<Extent>, usize)],
    q: &P,
    k: usize,
) -> Vec<(f64, usize)> {
    let k = k.max(1);
    // (mindist, maxdist, object count, shard index) per non-empty shard.
    let info: Vec<(f64, f64, usize, usize)> = shards
        .iter()
        .enumerate()
        .filter_map(|(i, (extent, count))| {
            extent
                .as_ref()
                .map(|e| (e.mindist(q), e.maxdist(q), *count, i))
        })
        .collect();
    let mut by_far: Vec<(f64, usize)> = info.iter().map(|&(_, far, c, _)| (far, c)).collect();
    by_far.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut h0 = f64::INFINITY;
    let mut seen = 0usize;
    for (far, count) in by_far {
        seen += count;
        if seen >= k {
            h0 = far;
            break;
        }
    }
    let mut selected: Vec<(f64, usize)> = info
        .into_iter()
        .filter(|&(near, _, _, _)| near <= h0)
        .map(|(near, _, _, i)| (near, i))
        .collect();
    selected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    selected
}

/// Copy-on-write successors touching only the owning shard: the
/// [`CowModel`] seam over a sharded database — what
/// [`crate::server::QueryServer::insert`]/[`remove`](crate::server::QueryServer::remove)
/// and the write-coalescing lane swap in.
impl<M: ShardableModel> CowModel for ShardedDb<M> {
    type Object = M::Object;

    fn object_id(object: &M::Object) -> ObjectId {
        M::object_id(object)
    }

    fn object_extent(object: &M::Object) -> Extent {
        M::object_extent(object)
    }

    fn contains_id(&self, id: ObjectId) -> bool {
        self.shards.iter().any(|s| s.contains_id(id))
    }

    /// A new `ShardedDb` sharing every untouched shard `Arc`, with only
    /// the owning shard path-copied.
    fn with_inserted(&self, object: M::Object) -> Result<Self> {
        let mut next = self.clone();
        next.insert(object)?;
        Ok(next)
    }

    /// As [`with_inserted`](Self::with_inserted); removing an absent id
    /// returns an unchanged (but distinct) database, mirroring
    /// [`crate::server::QueryServer::remove`]'s swap semantics.
    fn with_removed(&self, id: ObjectId) -> (Self, Option<M::Object>) {
        let mut next = self.clone();
        let removed = next.remove(id);
        (next, removed)
    }
}

impl<M> DistanceModel for ShardedDb<M>
where
    M: ShardableModel,
    M::Query: ShardPoint,
{
    type Query = M::Query;

    fn total_objects(&self) -> usize {
        self.len()
    }

    fn check_query(&self, q: &M::Query) -> Result<()> {
        self.shards[0].check_query(q)
    }

    /// The fan-out step: select overlapping shards, filter each through
    /// its own index, and merge the survivors
    /// ([`pipeline::fan_out_filter`]). The merged set feeds the shared
    /// verify/refine flow exactly once.
    fn filter(&self, q: &M::Query, k: usize) -> Result<Filtered> {
        let start = Instant::now();
        let selected = self.overlapping(q, k);
        let select_time = start.elapsed();
        let mut filtered =
            pipeline::fan_out_filter(selected.iter().map(|&(d, i)| (d, &*self.shards[i])), q, k)?;
        filtered.filter_time += select_time;
        Ok(filtered)
    }

    /// Sharding is invisible to the verification cache: snap and key
    /// exactly as the shard model does (equal keys ⇒ equal merged filter
    /// output, by the fan-out equivalence).
    fn quantize_query(&self, q: &M::Query, quantum: f64) -> M::Query {
        self.shards[0].quantize_query(q, quantum)
    }

    fn cache_key(&self, q: &M::Query) -> Option<u128> {
        self.shards[0].cache_key(q)
    }

    fn query_coords(&self, q: &M::Query) -> Option<Vec<f64>> {
        self.shards[0].query_coords(q)
    }
}

/// Convenience query surface mirroring [`crate::engine::UncertainDb`]
/// for 1-D-queried shard models.
impl<M> ShardedDb<M>
where
    M: ShardableModel<Query = f64>,
{
    /// Execute a C-PNN query through the unified pipeline (fan-out filter,
    /// shared verify → refine).
    pub fn cpnn(&self, query: &CpnnQuery, strategy: Strategy) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &query.q,
            &QuerySpec::nn(query.threshold, query.tolerance, strategy),
            &self.pipeline_config(),
        )
    }

    /// Exact qualification probabilities for every candidate, descending.
    pub fn pnn(&self, q: f64) -> Result<PnnResult> {
        pipeline::pnn(self, &q, 1)
    }

    /// Constrained probabilistic k-NN over the merged candidate set.
    pub fn cknn(&self, q: f64, k: usize, threshold: f64, tolerance: f64) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &q,
            &QuerySpec::knn(k, threshold, tolerance, Strategy::Verified),
            &self.pipeline_config(),
        )
    }

    /// Evaluate a batch of C-PNN queries through the shard-aware batch
    /// executor ([`crate::batch::BatchExecutor::run_sharded`]: work units
    /// are `(query, shard)` pairs, results in input order). `threads = 0`
    /// means one worker per available core, as everywhere else.
    pub fn cpnn_batch(
        &self,
        queries: &[CpnnQuery],
        strategy: Strategy,
        threads: usize,
    ) -> Vec<Result<CpnnResult>>
    where
        M: Send + Sync,
        M::Config: Send + Sync,
    {
        let jobs: Vec<(f64, QuerySpec)> = queries
            .iter()
            .map(|q| (q.q, QuerySpec::nn(q.threshold, q.tolerance, strategy)))
            .collect();
        crate::batch::BatchExecutor::new(threads)
            .run_sharded(self, &jobs, &self.pipeline_config())
            .results
    }
}

/// Index of the slab whose `[bounds[i], bounds[i+1])` interval holds
/// `center`, clamped into `[0, n)` — the routing key shared by
/// [`ShardedDb`] inserts and the socket router (`cpnn-router`), which
/// must route an insert to the same shard process the in-process
/// database would have path-copied.
pub fn slab_of(bounds: &[f64], center: f64) -> usize {
    let n = bounds.len() - 1;
    let i = bounds.partition_point(|b| *b <= center);
    i.saturating_sub(1).min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::UncertainDb;
    use crate::engine2d::{Object2d, UncertainDb2d};
    use crate::object::UncertainObject;

    fn objects(n: u64) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 100.0;
                UncertainObject::uniform(ObjectId(i), lo, lo + 3.0 + (i % 5) as f64).unwrap()
            })
            .collect()
    }

    /// Bit-for-bit equivalence: answers plus every report (id, label, and
    /// probability bounds — `ObjectReport` derives `PartialEq`).
    fn assert_equivalent(a: &CpnnResult, b: &CpnnResult, ctx: &str) {
        assert_eq!(a.answers, b.answers, "{ctx}");
        assert_eq!(a.reports, b.reports, "{ctx}");
    }

    #[test]
    fn partition_covers_every_object_exactly_once() {
        let objs = objects(50);
        let db = ShardedDb::<UncertainDb>::build(objs.clone(), Default::default(), 4).unwrap();
        assert_eq!(db.num_shards(), 4);
        assert_eq!(db.len(), 50);
        assert_eq!(db.shard_sizes().iter().sum::<usize>(), 50);
        let mut seen: Vec<u64> = (0..db.num_shards())
            .flat_map(|s| {
                db.shard_model(s)
                    .objects()
                    .iter()
                    .map(|o| o.id().0)
                    .collect::<Vec<_>>()
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_matches_unsharded_1d() {
        let objs = objects(60);
        let flat = UncertainDb::build(objs.clone()).unwrap();
        for shards in [1, 2, 3, 8] {
            let sharded =
                ShardedDb::<UncertainDb>::build(objs.clone(), Default::default(), shards).unwrap();
            for q in [-5.0, 0.0, 13.7, 50.2, 99.0, 140.0] {
                let query = CpnnQuery::new(q, 0.3, 0.01);
                let a = flat.cpnn(&query, Strategy::Verified).unwrap();
                let b = sharded.cpnn(&query, Strategy::Verified).unwrap();
                assert_equivalent(&a, &b, &format!("q = {q}, {shards} shards"));
            }
        }
    }

    #[test]
    fn quantile_sharding_matches_unsharded_too() {
        let objs = objects(60);
        let flat = UncertainDb::build(objs.clone()).unwrap();
        for shards in [2, 5] {
            let sharded = ShardedDb::<UncertainDb>::build_with(
                objs.clone(),
                Default::default(),
                shards,
                ShardBalance::Quantile,
            )
            .unwrap();
            for q in [-5.0, 13.7, 50.2, 140.0] {
                let query = CpnnQuery::new(q, 0.3, 0.01);
                let a = flat.cpnn(&query, Strategy::Verified).unwrap();
                let b = sharded.cpnn(&query, Strategy::Verified).unwrap();
                assert_equivalent(&a, &b, &format!("q = {q}, {shards} quantile shards"));
            }
        }
    }

    #[test]
    fn quantile_sharding_balances_clustered_data() {
        // Heavy cluster near 0, sparse tail: equal-width slabs dump almost
        // everything into shard 0; quantile slabs stay balanced.
        let objs: Vec<UncertainObject> = (0..120)
            .map(|i| {
                let lo = if i < 100 {
                    (i as f64) * 0.01 // dense cluster in [0, 1]
                } else {
                    (i - 99) as f64 * 50.0 // sparse tail out to 1000+
                };
                UncertainObject::uniform(ObjectId(i), lo, lo + 0.5).unwrap()
            })
            .collect();
        let width = ShardedDb::<UncertainDb>::build(objs.clone(), Default::default(), 4).unwrap();
        let quant = ShardedDb::<UncertainDb>::build_with(
            objs,
            Default::default(),
            4,
            ShardBalance::Quantile,
        )
        .unwrap();
        let wmax = *width.shard_sizes().iter().max().unwrap();
        let qmax = *quant.shard_sizes().iter().max().unwrap();
        let mean = 120.0 / 4.0;
        assert!(
            wmax as f64 > 2.0 * mean,
            "width slabs should be skewed here, max {wmax}"
        );
        assert!(
            (qmax as f64) < 1.5 * mean,
            "quantile slabs should be balanced, max {qmax} (sizes {:?})",
            quant.shard_sizes()
        );
        assert_eq!(quant.len(), 120);
    }

    #[test]
    fn sharded_matches_unsharded_knn() {
        let objs = objects(40);
        let flat = UncertainDb::build(objs.clone()).unwrap();
        for shards in [2, 5] {
            let sharded =
                ShardedDb::<UncertainDb>::build(objs.clone(), Default::default(), shards).unwrap();
            for q in [0.0, 31.4, 77.7] {
                for k in [2, 3] {
                    let a = flat.cknn(q, k, 0.4, 0.0).unwrap();
                    let b = sharded.cknn(q, k, 0.4, 0.0).unwrap();
                    assert_equivalent(&a, &b, &format!("q = {q}, k = {k}, {shards} shards"));
                }
            }
        }
    }

    #[test]
    fn sharded_matches_unsharded_2d() {
        let objs: Vec<Object2d> = (0..30)
            .map(|i| {
                let x = (i as f64 * 11.3) % 80.0;
                let y = (i as f64 * 5.7) % 60.0;
                if i % 3 == 0 {
                    Object2d::rectangle(ObjectId(i), [x, y], [x + 2.0, y + 3.0]).unwrap()
                } else {
                    Object2d::circle(ObjectId(i), [x, y], 1.0 + (i % 4) as f64 * 0.5).unwrap()
                }
            })
            .collect();
        let flat = UncertainDb2d::build(objs.clone()).unwrap();
        for shards in [1, 3, 8] {
            let sharded =
                ShardedDb::<UncertainDb2d>::build(objs.clone(), Default::default(), shards)
                    .unwrap();
            for q in [[0.0, 0.0], [40.0, 30.0], [79.0, 59.0]] {
                let a = pipeline::cpnn(
                    &flat,
                    &q,
                    &QuerySpec::nn(0.3, 0.01, Strategy::Verified),
                    &PipelineConfig::default(),
                )
                .unwrap();
                let b = pipeline::cpnn(
                    &sharded,
                    &q,
                    &QuerySpec::nn(0.3, 0.01, Strategy::Verified),
                    &PipelineConfig::default(),
                )
                .unwrap();
                assert_equivalent(&a, &b, &format!("q = {q:?}, {shards} shards"));
            }
        }
    }

    #[test]
    fn duplicate_ids_rejected_across_shards() {
        let mut objs = objects(10);
        objs.push(UncertainObject::uniform(ObjectId(3), 0.0, 1.0).unwrap());
        assert!(matches!(
            ShardedDb::<UncertainDb>::build(objs, Default::default(), 4),
            Err(CoreError::DuplicateObjectId(3))
        ));
    }

    #[test]
    fn insert_path_copies_only_the_owning_shard() {
        let mut db = ShardedDb::<UncertainDb>::build(objects(40), Default::default(), 4).unwrap();
        let before: Vec<*const UncertainDb> =
            (0..4).map(|s| db.shard_model(s) as *const _).collect();
        db.insert(UncertainObject::uniform(ObjectId(1000), 1.0, 2.0).unwrap())
            .unwrap();
        let after: Vec<*const UncertainDb> =
            (0..4).map(|s| db.shard_model(s) as *const _).collect();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1, "exactly one shard replaced");
        assert_eq!(db.len(), 41);
        // The inserted object is findable.
        let res = db.pnn(1.5).unwrap();
        assert_eq!(res.probabilities[0].0, ObjectId(1000));
    }

    #[test]
    fn cow_insert_shares_untouched_shards() {
        let db = ShardedDb::<UncertainDb>::build(objects(40), Default::default(), 4).unwrap();
        let next = db
            .with_inserted(UncertainObject::uniform(ObjectId(1000), 1.0, 2.0).unwrap())
            .unwrap();
        let shared = (0..4)
            .filter(|&s| std::ptr::eq(db.shard_model(s), next.shard_model(s)))
            .count();
        assert_eq!(shared, 3, "three of four shard Arcs shared");
        assert_eq!(db.len(), 40, "original untouched");
        assert_eq!(next.len(), 41);
    }

    #[test]
    fn insert_duplicate_id_rejected() {
        let mut db = ShardedDb::<UncertainDb>::build(objects(10), Default::default(), 3).unwrap();
        assert!(matches!(
            db.insert(UncertainObject::uniform(ObjectId(4), 0.0, 1.0).unwrap()),
            Err(CoreError::DuplicateObjectId(4))
        ));
    }

    #[test]
    fn remove_roundtrip_restores_results() {
        let objs = objects(30);
        let mut db = ShardedDb::<UncertainDb>::build(objs.clone(), Default::default(), 3).unwrap();
        db.insert(UncertainObject::uniform(ObjectId(500), 10.0, 10.5).unwrap())
            .unwrap();
        assert!(db.remove(ObjectId(500)).is_some());
        assert!(db.remove(ObjectId(500)).is_none());
        let fresh = ShardedDb::<UncertainDb>::build(objs, Default::default(), 3).unwrap();
        for q in [0.0, 10.2, 55.0] {
            let a = db.pnn(q).unwrap();
            let b = fresh.pnn(q).unwrap();
            assert_eq!(a.probabilities.len(), b.probabilities.len());
            for ((ida, pa), (idb, pb)) in a.probabilities.iter().zip(&b.probabilities) {
                assert_eq!(ida, idb);
                assert!((pa - pb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn outlier_inserts_route_to_edge_shards() {
        let mut db = ShardedDb::<UncertainDb>::build(objects(20), Default::default(), 4).unwrap();
        // Far outside the build-time domain on both sides.
        db.insert(UncertainObject::uniform(ObjectId(600), -500.0, -499.0).unwrap())
            .unwrap();
        db.insert(UncertainObject::uniform(ObjectId(601), 900.0, 901.0).unwrap())
            .unwrap();
        assert_eq!(db.len(), 22);
        assert_eq!(db.pnn(-499.5).unwrap().probabilities[0].0, ObjectId(600));
        assert_eq!(db.pnn(900.5).unwrap().probabilities[0].0, ObjectId(601));
    }

    #[test]
    fn empty_database_still_answers() {
        let db = ShardedDb::<UncertainDb>::build(Vec::new(), Default::default(), 4).unwrap();
        assert!(db.is_empty());
        let res = db
            .cpnn(&CpnnQuery::new(0.0, 0.3, 0.0), Strategy::Verified)
            .unwrap();
        assert!(res.answers.is_empty());
    }

    #[test]
    fn more_shards_than_objects_is_fine() {
        let db = ShardedDb::<UncertainDb>::build(objects(3), Default::default(), 16).unwrap();
        assert_eq!(db.num_shards(), 16);
        let flat = UncertainDb::build(objects(3)).unwrap();
        let a = flat.pnn(5.0).unwrap();
        let b = db.pnn(5.0).unwrap();
        assert_eq!(a.probabilities.len(), b.probabilities.len());
    }

    #[test]
    fn overlapping_prunes_distant_shards() {
        // 100 tightly clustered objects per decade: a query inside one
        // cluster must not fan out to every shard.
        let objs: Vec<UncertainObject> = (0..100)
            .map(|i| {
                let lo = (i / 10) as f64 * 1000.0 + (i % 10) as f64;
                UncertainObject::uniform(ObjectId(i as u64), lo, lo + 0.5).unwrap()
            })
            .collect();
        let db = ShardedDb::<UncertainDb>::build(objs, Default::default(), 10).unwrap();
        let visited = db.overlapping(&5.0, 1);
        assert!(
            visited.len() < 10,
            "expected pruning, visited {} shards",
            visited.len()
        );
    }

    #[test]
    fn extent_distances_are_consistent() {
        let e = Extent::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        assert_eq!(e.mindist(&[1.0, 1.0]), 0.0);
        assert!((e.maxdist(&[1.0, 1.0]) - 2f64.sqrt()).abs() < 1e-12);
        assert!((e.mindist(&[5.0, 1.0]) - 3.0).abs() < 1e-12);
        let e1 = Extent::new(vec![1.0], vec![3.0]);
        assert_eq!(e1.mindist(&0.0), 1.0);
        assert_eq!(e1.maxdist(&0.0), 3.0);
    }

    #[test]
    fn shard_balance_parses_cli_names() {
        assert_eq!(ShardBalance::parse("width"), Some(ShardBalance::Width));
        assert_eq!(
            ShardBalance::parse("quantile"),
            Some(ShardBalance::Quantile)
        );
        assert_eq!(ShardBalance::parse("zipf"), None);
    }
}
