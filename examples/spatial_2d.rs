//! 2-D uncertainty: ride-hailing dispatch with circular uncertainty
//! regions.
//!
//! The paper's machinery "only needs distance pdfs and cdfs", so it extends
//! to 2-D by deriving those from 2-D regions (Sec. IV-A, after [8]). Here
//! each driver's position is a uniform disk (last GPS fix + drift bound);
//! the distance cdf from a rider is a closed-form lens-area ratio, and the
//! verifiers run unchanged on top.
//!
//! Run with: `cargo run --example spatial_2d`

use cpnn::core::{cpnn_2d, pnn_2d, CircleObject, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 120 drivers scattered over a 10 km × 10 km city grid (meters).
    let mut rng = StdRng::seed_from_u64(314);
    let drivers: Vec<CircleObject> = (0..120)
        .map(|i| {
            let center = [rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)];
            let drift = rng.gen_range(40.0..400.0); // staleness-dependent
            CircleObject::new(ObjectId(i), center, drift).expect("valid circle")
        })
        .collect();

    let rider = [5_000.0, 5_000.0];
    println!("Rider at {rider:?}. Who is most likely the nearest driver?\n");

    // Exact probabilities for the contenders.
    let probs = pnn_2d(&drivers, rider, 64)?;
    println!("PNN probabilities (nonzero candidates):");
    for (id, p) in probs.iter().filter(|(_, p)| *p > 1e-6) {
        let d = &drivers[id.0 as usize];
        let dx = d.center[0] - rider[0];
        let dy = d.center[1] - rider[1];
        println!(
            "  driver {id}: {:5.1}%  (center distance {:6.0} m, drift ±{:3.0} m)",
            100.0 * p,
            (dx * dx + dy * dy).sqrt(),
            d.radius
        );
    }

    // Constrained query: dispatch candidates with ≥ 30% confidence.
    let res = cpnn_2d(&drivers, rider, 0.30, 0.01, 64)?;
    println!(
        "\nC-PNN (P = 30%): {} candidate(s) after filtering, answers {:?}",
        res.candidates, res.answers
    );
    println!(
        "verifiers resolved the query without integration: {}",
        res.resolved_by_verification
    );
    for r in res.reports.iter().filter(|r| r.bound.hi() > 0.05) {
        println!("  driver {}: bound {} → {:?}", r.id, r.bound, r.label);
    }
    Ok(())
}
