//! 2-D uncertainty: circular regions with uniform pdfs.
//!
//! The paper focuses on 1-D but notes (Sec. IV-A): "our solution only needs
//! distance pdfs and cdfs. Thus, our solution can be extended to 2D space,
//! by computing the distance pdf and cdf from the 2D uncertainty regions,
//! using the formulae discussed in \[8\]" — \[8\] derives them for circles.
//!
//! For a uniform disk of center `c`, radius `R`, and a query point `q` at
//! distance `d = |q − c|`, the distance cdf is a *lens area* ratio:
//!
//! ```text
//! D(r) = area( disk(q, r) ∩ disk(c, R) ) / (π R²)
//! ```
//!
//! which has a closed form. The cdf is discretized (mass-preserving) into a
//! distance histogram, after which the entire 1-D verifier machinery —
//! subregions, RS/L-SR/U-SR, refinement — applies unchanged through
//! [`crate::candidate::CandidateSet::from_distances`].

use std::time::Instant;

use cpnn_pdf::HistogramPdf;

use crate::distance::DistanceDistribution;
use crate::engine::{ObjectReport, Strategy};
use crate::error::{CoreError, Result};
use crate::object::ObjectId;
use crate::pipeline::{self, DistanceModel, Filtered, PipelineConfig, QuerySpec};

/// A 2-D uncertain object: uniform pdf over a disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircleObject {
    /// Object identifier.
    pub id: ObjectId,
    /// Disk center.
    pub center: [f64; 2],
    /// Disk radius (must be positive).
    pub radius: f64,
}

impl CircleObject {
    /// Validated constructor.
    pub fn new(id: ObjectId, center: [f64; 2], radius: f64) -> Result<Self> {
        // `!(radius > 0.0)` rather than `radius <= 0.0`: also rejects NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(radius > 0.0) || !radius.is_finite() {
            return Err(CoreError::Pdf(cpnn_pdf::PdfError::NonPositiveParameter {
                name: "radius",
                value: radius,
            }));
        }
        if !(center[0].is_finite() && center[1].is_finite()) {
            return Err(CoreError::InvalidQueryPoint(center[0]));
        }
        Ok(Self { id, center, radius })
    }

    /// Minimum possible distance from `q` (the near point).
    pub fn near(&self, q: [f64; 2]) -> f64 {
        (self.center_dist(q) - self.radius).max(0.0)
    }

    /// Maximum possible distance from `q` (the far point).
    pub fn far(&self, q: [f64; 2]) -> f64 {
        self.center_dist(q) + self.radius
    }

    fn center_dist(&self, q: [f64; 2]) -> f64 {
        let dx = self.center[0] - q[0];
        let dy = self.center[1] - q[1];
        (dx * dx + dy * dy).sqrt()
    }
}

/// Area of the intersection of two disks with radii `r1`, `r2` and center
/// distance `d` (the circular lens).
pub fn lens_area(d: f64, r1: f64, r2: f64) -> f64 {
    if r1 <= 0.0 || r2 <= 0.0 {
        return 0.0;
    }
    if d >= r1 + r2 {
        return 0.0;
    }
    let rmin = r1.min(r2);
    if d <= (r1 - r2).abs() {
        return std::f64::consts::PI * rmin * rmin;
    }
    let alpha = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
    let beta = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
    let t1 = r1 * r1 * alpha.acos();
    let t2 = r2 * r2 * beta.acos();
    let s = ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)).max(0.0);
    t1 + t2 - 0.5 * s.sqrt()
}

/// Distance cdf of a uniform disk from `q`: `D(r) = lens(d, r, R)/(πR²)`.
pub fn circle_distance_cdf(obj: &CircleObject, q: [f64; 2], r: f64) -> f64 {
    let d = obj.center_dist(q);
    let total = std::f64::consts::PI * obj.radius * obj.radius;
    (lens_area(d, r.max(0.0), obj.radius) / total).clamp(0.0, 1.0)
}

/// Build the distance distribution of a circular object by discretizing its
/// lens-area cdf onto `bins` equal-width bins over `[near, far]`.
pub fn circle_distance_distribution(
    obj: &CircleObject,
    q: [f64; 2],
    bins: usize,
) -> Result<DistanceDistribution> {
    let bins = bins.max(2);
    let near = obj.near(q);
    let far = obj.far(q);
    let w = (far - near) / bins as f64;
    let edges: Vec<f64> = (0..=bins)
        .map(|i| if i == bins { far } else { near + i as f64 * w })
        .collect();
    let masses: Vec<f64> = (0..bins)
        .map(|i| {
            (circle_distance_cdf(obj, q, edges[i + 1]) - circle_distance_cdf(obj, q, edges[i]))
                .max(0.0)
        })
        .collect();
    let hist = HistogramPdf::from_masses(edges, masses)?;
    // Route through the 1-D fold with query 0: the histogram already lives
    // on the distance domain, so folding around 0 is the identity.
    DistanceDistribution::from_pdf(&hist, 0.0)
}

/// Result of a 2-D C-PNN query.
#[derive(Debug, Clone)]
pub struct Cpnn2dResult {
    /// IDs satisfying the query, ascending.
    pub answers: Vec<ObjectId>,
    /// Verdict per candidate.
    pub reports: Vec<ObjectReport>,
    /// Candidate-set size after filtering.
    pub candidates: usize,
    /// Whether verification alone resolved the query.
    pub resolved_by_verification: bool,
}

/// A [`DistanceModel`] over a plain slice of circular objects — no index,
/// exact near/far scan filtering. The smallest possible instantiation of
/// the unified pipeline, useful for one-shot queries without building an
/// [`crate::engine2d::UncertainDb2d`].
#[derive(Debug, Clone, Copy)]
pub struct CircleSliceModel<'a> {
    objects: &'a [CircleObject],
    bins: usize,
}

impl<'a> CircleSliceModel<'a> {
    /// Model over `objects`, discretizing distance cdfs onto `bins` bars.
    pub fn new(objects: &'a [CircleObject], bins: usize) -> Self {
        Self { objects, bins }
    }
}

impl DistanceModel for CircleSliceModel<'_> {
    type Query = [f64; 2];

    fn total_objects(&self) -> usize {
        self.objects.len()
    }

    fn check_query(&self, q: &[f64; 2]) -> Result<()> {
        if !(q[0].is_finite() && q[1].is_finite()) {
            return Err(CoreError::InvalidQueryPoint(q[0]));
        }
        Ok(())
    }

    fn filter(&self, q: &[f64; 2], k: usize) -> Result<Filtered> {
        let start = Instant::now();
        let mut fars: Vec<f64> = self.objects.iter().map(|o| o.far(*q)).collect();
        let horizon = crate::candidate::k_horizon(&mut fars, k);
        let survivors: Vec<&CircleObject> = self
            .objects
            .iter()
            .filter(|o| o.near(*q) <= horizon)
            .collect();
        let filter_time = start.elapsed();
        let mut items = Vec::with_capacity(survivors.len());
        for o in survivors {
            items.push((o.id, circle_distance_distribution(o, *q, self.bins)?));
        }
        Ok(Filtered { items, filter_time })
    }
}

/// Evaluate a C-PNN over 2-D circular objects: exact near/far filtering,
/// lens-area distance cdfs, then the standard verify → refine pipeline.
pub fn cpnn_2d(
    objects: &[CircleObject],
    q: [f64; 2],
    threshold: f64,
    tolerance: f64,
    bins: usize,
) -> Result<Cpnn2dResult> {
    let model = CircleSliceModel::new(objects, bins);
    let res = pipeline::cpnn(
        &model,
        &q,
        &QuerySpec::nn(threshold, tolerance, Strategy::Verified),
        &PipelineConfig::default(),
    )?;
    Ok(Cpnn2dResult {
        answers: res.answers,
        candidates: res.stats.candidates,
        resolved_by_verification: res.stats.resolved_by_verification,
        reports: res.reports,
    })
}

/// Exact 2-D PNN probabilities (subregion decomposition over lens-area
/// cdfs), descending.
pub fn pnn_2d(objects: &[CircleObject], q: [f64; 2], bins: usize) -> Result<Vec<(ObjectId, f64)>> {
    let model = CircleSliceModel::new(objects, bins);
    Ok(pipeline::pnn(&model, &q, 1)?.probabilities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lens_area_limits() {
        let pi = std::f64::consts::PI;
        // Disjoint.
        assert_eq!(lens_area(5.0, 2.0, 2.0), 0.0);
        // Contained.
        assert!((lens_area(0.5, 1.0, 5.0) - pi).abs() < 1e-12);
        // Identical circles fully overlapping.
        assert!((lens_area(0.0, 2.0, 2.0) - 4.0 * pi).abs() < 1e-12);
        // Half-overlap symmetry: lens(d, r, r) at d = r is 2r²(π/3 − √3/4).
        let r: f64 = 3.0;
        let expect = 2.0 * r * r * (pi / 3.0 - 3.0f64.sqrt() / 4.0);
        assert!((lens_area(r, r, r) - expect).abs() < 1e-9);
    }

    #[test]
    fn cdf_from_disk_center_is_r_squared() {
        // q at the disk center: D(r) = (r/R)².
        let o = CircleObject::new(ObjectId(0), [0.0, 0.0], 2.0).unwrap();
        for r in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let want = (r / 2.0) * (r / 2.0);
            let got = circle_distance_cdf(&o, [0.0, 0.0], r);
            assert!((got - want).abs() < 1e-12, "r = {r}: {got} vs {want}");
        }
    }

    #[test]
    fn distance_distribution_is_normalized_and_bounded() {
        let o = CircleObject::new(ObjectId(0), [3.0, 4.0], 1.5).unwrap();
        let q = [0.0, 0.0];
        let d = circle_distance_distribution(&o, q, 64).unwrap();
        assert!((d.near() - 3.5).abs() < 1e-12); // |q−c| = 5, R = 1.5
        assert!((d.far() - 6.5).abs() < 1e-12);
        assert!((d.cdf(6.5) - 1.0).abs() < 1e-12);
        assert!(d.cdf(3.5) < 1e-12);
        // Monotone cdf.
        let mut prev = 0.0;
        for i in 0..=20 {
            let r = 3.5 + 3.0 * i as f64 / 20.0;
            let c = d.cdf(r);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn symmetric_circles_split_evenly() {
        let objects = vec![
            CircleObject::new(ObjectId(0), [2.0, 0.0], 1.0).unwrap(),
            CircleObject::new(ObjectId(1), [-2.0, 0.0], 1.0).unwrap(),
        ];
        let probs = pnn_2d(&objects, [0.0, 0.0], 64).unwrap();
        for (_, p) in &probs {
            assert!((p - 0.5).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn nearer_circle_dominates() {
        let objects = vec![
            CircleObject::new(ObjectId(0), [1.0, 0.0], 0.5).unwrap(),
            CircleObject::new(ObjectId(1), [5.0, 0.0], 0.5).unwrap(),
        ];
        let probs = pnn_2d(&objects, [0.0, 0.0], 64).unwrap();
        assert_eq!(probs[0].0, ObjectId(0));
        assert!((probs[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpnn_2d_answers_match_exact_thresholding() {
        let objects: Vec<CircleObject> = (0..8)
            .map(|i| {
                let angle = i as f64 * 0.7;
                CircleObject::new(
                    ObjectId(i),
                    [
                        (2.0 + 0.4 * i as f64) * angle.cos(),
                        (2.0 + 0.4 * i as f64) * angle.sin(),
                    ],
                    0.8 + 0.1 * i as f64,
                )
                .unwrap()
            })
            .collect();
        let q = [0.5, 0.5];
        let exact = pnn_2d(&objects, q, 48).unwrap();
        for threshold in [0.2, 0.4, 0.6] {
            let res = cpnn_2d(&objects, q, threshold, 0.0, 48).unwrap();
            let want: Vec<ObjectId> = {
                let mut v: Vec<ObjectId> = exact
                    .iter()
                    .filter(|(_, p)| *p >= threshold)
                    .map(|(id, _)| *id)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(res.answers, want, "P = {threshold}");
        }
    }

    #[test]
    fn probabilities_sum_to_one_2d() {
        let objects: Vec<CircleObject> = (0..6)
            .map(|i| {
                CircleObject::new(
                    ObjectId(i),
                    [i as f64, (i % 3) as f64],
                    1.0 + 0.2 * i as f64,
                )
                .unwrap()
            })
            .collect();
        let probs = pnn_2d(&objects, [1.5, 1.0], 64).unwrap();
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn invalid_circles_rejected() {
        assert!(CircleObject::new(ObjectId(0), [0.0, 0.0], 0.0).is_err());
        assert!(CircleObject::new(ObjectId(0), [0.0, 0.0], -1.0).is_err());
        assert!(CircleObject::new(ObjectId(0), [f64::NAN, 0.0], 1.0).is_err());
    }
}
