//! Verification-state caching: quantized-query LRU memoization of the
//! expensive, *query-point-determined* half of the pipeline.
//!
//! The paper's verify/refine flow recomputes per-object distance
//! distributions and the dense [`SubregionTable`] from scratch for every
//! query, even though real traffic issues repeated (or, after
//! quantization, identical) query points whose candidate sets and
//! distributions are the same — precomputing query-independent
//! probabilistic structure is how Probabilistic Voronoi Diagrams amortize
//! repeated PNN evaluation. [`VerifyCache`] memoizes exactly the state
//! that depends only on `(query point, k, snapshot)`:
//!
//! * the **filter output** — the candidate set, including every
//!   survivor's distance distribution (the product of phases 1–2,
//!   dominated by pdf folding / 2-D cdf integration);
//! * the **subregion table** — built lazily by the first strategy that
//!   needs one and reused afterwards.
//!
//! Thresholds, tolerances, and strategies are deliberately *not* part of
//! the key: verify/refine re-run on every query, so one cached entry
//! serves every `P`/`Δ`/strategy at that point. The cache therefore never
//! changes any verdict or probability bound — it only skips recomputing
//! inputs that are bit-identical by construction.
//!
//! # Quantization correctness
//!
//! With `quantum == 0` a lookup key is the exact bit pattern of the query
//! point: cached and uncached evaluation are bit-for-bit identical
//! (property-tested in `tests/proptest_cache.rs`). With `quantum = ε > 0`
//! every query point is first **snapped to its grid representative**
//! (each coordinate rounded to the nearest multiple of ε) and then
//! evaluated — on a hit *and* on a miss. Snapping is a pure function of
//! the point, so the answer a query receives is independent of cache
//! state, arrival order, and capacity: it is always the uncached answer
//! *of the snapped point*. The approximation is the snap, never the
//! cache.
//!
//! # Snapshot-version invalidation
//!
//! A cache is only sound against one immutable database. Every execution
//! surface that evaluates against a [`crate::server::Snapshot`] tells its
//! scratch the pinned version ([`crate::QueryScratch::set_snapshot_version`])
//! before evaluating; when the version moves, the cache clears itself, so
//! a copy-on-write update can never serve stale candidate sets or bounds
//! (property-tested under interleaved `insert`/`remove` through
//! [`crate::server::QueryServer`]). As defense in depth for callers
//! driving `cpnn_with` directly, the cache also pins the database's
//! object count on every query ([`VerifyCache::pin_source`]): an
//! in-place `insert`/`remove` on the model, or reusing one scratch
//! across differently-sized databases, invalidates automatically even
//! though no version ever moved. An equal-count swap is the one case the
//! guards cannot see — use a fresh scratch (or bump the version) when
//! substituting objects behind a cached scratch.
//!
//! # Example
//!
//! ```
//! use cpnn_core::cache::CacheConfig;
//! use cpnn_core::{
//!     pipeline, ObjectId, PipelineConfig, QueryScratch, QuerySpec, Strategy, UncertainDb,
//!     UncertainObject,
//! };
//!
//! let db = UncertainDb::build(vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
//! ])
//! .unwrap();
//! let mut cfg = PipelineConfig::default();
//! cfg.cache = CacheConfig::new(128, 0.0);
//! let mut scratch = QueryScratch::new();
//! let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
//!
//! let first = pipeline::cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
//! let second = pipeline::cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
//! assert_eq!(first.answers, second.answers);
//! let stats = scratch.cache_stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::candidate::CandidateSet;
use crate::shard::Extent;
use crate::subregion::SubregionTable;

/// Tuning for a per-thread [`VerifyCache`]. Lives inside
/// [`crate::PipelineConfig`], so every execution surface — one-shot,
/// batch, server, sharded — picks it up without new plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum memoized query points per thread; `0` disables caching
    /// entirely (the default).
    pub capacity: usize,
    /// Quantization grid width ε. `0.0` reuses exact repeats only;
    /// `ε > 0` snaps every query coordinate to the nearest multiple of ε
    /// **before** evaluation, so nearby points share one entry (see the
    /// [module docs](self) for why this never makes answers depend on
    /// cache state).
    pub quantum: f64,
}

impl CacheConfig {
    /// A cache of `capacity` entries with grid width `quantum`.
    ///
    /// ```
    /// use cpnn_core::cache::CacheConfig;
    /// let cfg = CacheConfig::new(256, 0.5);
    /// assert!(cfg.is_enabled());
    /// assert!(!CacheConfig::disabled().is_enabled());
    /// ```
    pub fn new(capacity: usize, quantum: f64) -> Self {
        Self { capacity, quantum }
    }

    /// The no-cache configuration (also the [`Default`]).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            quantum: 0.0,
        }
    }

    /// Does this configuration cache anything at all?
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Cumulative cache counters. Survive [`VerifyCache`] invalidations, so a
/// long-running worker reports its lifetime hit rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the *local* (per-thread) cache.
    pub hits: u64,
    /// Lookups that had to filter and build distributions from scratch
    /// (neither tier had the entry).
    pub misses: u64,
    /// Local misses answered by the shared [`SharedVerifyCache`] tier —
    /// i.e. state another worker computed and published. Counted on the
    /// worker that served the reply, never double-counted with `hits` or
    /// `misses`.
    pub shared_hits: u64,
    /// Entry hits (local or shared) that *also* carried a memoized
    /// verification outcome for the exact spec, short-circuiting
    /// verify/refine entirely. Always `≤ hits + shared_hits`; counted in
    /// addition to the entry hit, not instead of it.
    pub outcome_hits: u64,
    /// Whole-cache clears caused by a snapshot-version change.
    pub invalidations: u64,
    /// Entries dropped by *incremental* (region-scoped) invalidation —
    /// entries whose candidate horizon intersected an updated region (see
    /// [`VerifyCache::advance_version`]). Entries that survive such a
    /// pass keep serving hits across snapshot versions.
    pub region_evictions: u64,
}

impl CacheStats {
    /// Total lookups (each query counted once: local hit, shared hit, or
    /// miss).
    pub fn lookups(&self) -> u64 {
        self.hits + self.shared_hits + self.misses
    }

    /// Entry hits (either tier) per lookup in `[0, 1]` (`0` before the
    /// first lookup).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            return 0.0;
        }
        (self.hits + self.shared_hits) as f64 / n as f64
    }

    /// Fold another counter set into this one (batch workers aggregate
    /// their per-thread caches this way).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.shared_hits += other.shared_hits;
        self.outcome_hits += other.outcome_hits;
        self.invalidations += other.invalidations;
        self.region_evictions += other.region_evictions;
    }
}

/// Snap one coordinate to the nearest multiple of `quantum`
/// (identity when `quantum` is zero, negative, or not finite).
///
/// ```
/// use cpnn_core::cache::quantize_coord;
/// assert_eq!(quantize_coord(4203.7, 10.0), 4200.0);
/// assert_eq!(quantize_coord(4203.7, 0.0), 4203.7);
/// ```
pub fn quantize_coord(c: f64, quantum: f64) -> f64 {
    if quantum > 0.0 && quantum.is_finite() && c.is_finite() {
        (c / quantum).round() * quantum
    } else {
        c
    }
}

/// Bit-exact key of a 1-D query point (already snapped).
pub fn point_key_1d(q: f64) -> u128 {
    q.to_bits() as u128
}

/// Bit-exact key of a 2-D query point (already snapped).
pub fn point_key_2d(q: [f64; 2]) -> u128 {
    ((q[0].to_bits() as u128) << 64) | q[1].to_bits() as u128
}

/// Bit-exact key of one memoized *verification outcome* at a cached
/// query point: the exact threshold/tolerance band, the strategy
/// (including Monte-Carlo world count and seed — strategies are
/// deterministic functions of their spec), and the pipeline knobs that
/// shape verify/refine (`refinement_order`, `basic_tolerance`,
/// `extended_verifiers`). `k` and the snapped point are already part of
/// the *entry* key, so they are not repeated here.
///
/// Keying the band **exactly** (by bit pattern) is what makes the
/// short-circuit trivially sound: a memo hit replays the reports of a
/// prior evaluation of the *same* candidate set under the *same* spec and
/// config — and since every strategy is a deterministic function of
/// (candidates, spec, config), the replayed reports are bit-for-bit what
/// re-running verify/refine would produce (property-tested in
/// `tests/proptest_shared_cache.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutcomeKey {
    threshold: u64,
    tolerance: u64,
    /// Strategy discriminant plus Monte-Carlo parameters (zero for the
    /// deterministic strategies).
    strategy: (u8, u64, u64),
    refinement: u8,
    basic_tolerance: u64,
    extended_verifiers: bool,
}

impl OutcomeKey {
    /// The outcome key for evaluating `spec` under `cfg`.
    pub fn new(spec: &crate::pipeline::QuerySpec, cfg: &crate::pipeline::PipelineConfig) -> Self {
        use crate::pipeline::Strategy;
        use crate::refine::RefinementOrder;
        let strategy = match spec.strategy {
            Strategy::Basic => (0u8, 0u64, 0u64),
            Strategy::RefineOnly => (1, 0, 0),
            Strategy::Verified => (2, 0, 0),
            Strategy::MonteCarlo { worlds, seed } => (3, worlds as u64, seed),
        };
        let refinement = match cfg.refinement_order {
            RefinementOrder::DescendingMass => 0u8,
            RefinementOrder::LeftToRight => 1,
        };
        Self {
            threshold: spec.threshold.to_bits(),
            tolerance: spec.tolerance.to_bits(),
            strategy,
            refinement,
            basic_tolerance: cfg.basic_tolerance.to_bits(),
            extended_verifiers: cfg.extended_verifiers,
        }
    }
}

/// One memoized verification state: the candidate set (filter output +
/// per-candidate distance distributions) and, once some strategy built
/// it, the subregion table. Both sit behind [`Arc`]s so a hit costs two
/// refcount bumps, not a copy.
///
/// For **incremental invalidation** the entry also remembers the (snapped)
/// query point it was computed at and its *candidate horizon* — the
/// `k`-th smallest far point the filter pruned against. An update whose
/// region lies entirely beyond the horizon provably cannot change this
/// entry's candidate set (its near distance exceeds the horizon, so it is
/// not a candidate; its far distance exceeds the `k`-th far, so it cannot
/// tighten the horizon either), so the entry survives the snapshot swap.
#[derive(Debug, Clone)]
pub struct CachedQuery {
    cands: Arc<CandidateSet>,
    table: Option<Arc<SubregionTable>>,
    /// Coordinates of the (snapped) query point, `None` when the model
    /// cannot expose them — such entries drop on any region invalidation.
    coords: Option<Box<[f64]>>,
    /// The filter's pruning horizon at this point (`INFINITY` when the
    /// candidate set covered the whole database, i.e. `|C| < k`).
    horizon: f64,
    /// Memoized verification outcomes at this point, one per exact
    /// (spec, config) band ([`OutcomeKey`]), oldest-first and bounded by
    /// `OUTCOME_CAP`. They live *inside* the entry so every
    /// invalidation rule (version, source pin, region pass, eviction)
    /// covers them for free: an outcome is replayable exactly as long as
    /// its candidate set is.
    outcomes: Vec<(OutcomeKey, Arc<Vec<crate::pipeline::ObjectReport>>)>,
}

/// Distinct (spec, config) bands memoized per cached entry; real traffic
/// reuses a handful of thresholds, so a small bound keeps entries cheap
/// to clone while adversarial spec churn evicts oldest-first.
const OUTCOME_CAP: usize = 8;

impl CachedQuery {
    /// An entry holding filter output only (the table attaches later).
    /// Without query coordinates the entry is dropped by *any* region
    /// invalidation; prefer [`for_query`](Self::for_query).
    pub fn new(cands: Arc<CandidateSet>) -> Self {
        Self {
            cands,
            table: None,
            coords: None,
            horizon: f64::INFINITY,
            outcomes: Vec::new(),
        }
    }

    /// An entry that can survive incremental invalidation: remembers the
    /// snapped query coordinates and derives the candidate horizon from
    /// the candidate set (`INFINITY` when fewer than `k` candidates exist
    /// — then the whole database was in range and any update may matter).
    pub fn for_query(cands: Arc<CandidateSet>, coords: Option<Vec<f64>>, k: usize) -> Self {
        let horizon = if cands.len() < k.max(1) {
            f64::INFINITY
        } else {
            cands.horizon()
        };
        Self {
            cands,
            table: None,
            coords: coords.map(Vec::into_boxed_slice),
            horizon,
            outcomes: Vec::new(),
        }
    }

    /// The memoized candidate set.
    pub fn candidates(&self) -> &Arc<CandidateSet> {
        &self.cands
    }

    /// The memoized subregion table, if one was ever built at this point.
    pub fn table(&self) -> Option<&Arc<SubregionTable>> {
        self.table.as_ref()
    }

    /// Fill the subregion table if none is attached yet (first builder
    /// wins; the table is a pure function of the candidate set, so any
    /// builder's copy is interchangeable).
    pub fn set_table(&mut self, table: Arc<SubregionTable>) {
        if self.table.is_none() {
            self.table = Some(table);
        }
    }

    /// The memoized reports for an exact (spec, config) band, if this
    /// entry has seen that band before.
    pub fn outcome(&self, key: &OutcomeKey) -> Option<Arc<Vec<crate::pipeline::ObjectReport>>> {
        self.outcomes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, reports)| Arc::clone(reports))
    }

    /// Memoize the reports of one evaluated (spec, config) band, evicting
    /// the oldest band beyond `OUTCOME_CAP`. First writer wins on a
    /// duplicate key (the reports are deterministic, so copies agree).
    pub fn record_outcome(
        &mut self,
        key: OutcomeKey,
        reports: Arc<Vec<crate::pipeline::ObjectReport>>,
    ) {
        if self.outcomes.iter().any(|(k, _)| *k == key) {
            return;
        }
        if self.outcomes.len() >= OUTCOME_CAP {
            self.outcomes.remove(0);
        }
        self.outcomes.push((key, reports));
    }

    /// Can this entry survive an update confined to `region`? True only
    /// when the region's minimum distance from the entry's query point
    /// strictly exceeds the candidate horizon (see the type docs for the
    /// soundness argument). Conservative on missing/mismatched
    /// coordinates: the entry does not survive.
    fn survives(&self, region: &Extent) -> bool {
        let Some(coords) = self.coords.as_deref() else {
            return false;
        };
        if coords.len() != region.dims() {
            return false;
        }
        region.mindist(&coords) > self.horizon
    }
}

/// Key of one memoized query: the snapped point's bit pattern plus the
/// neighbor count `k` (a `k = 1` candidate set prunes against a tighter
/// horizon than a `k = 3` one, so they cannot share state). The snapshot
/// version is *not* in the key — a version change clears the whole cache
/// instead, so stale entries cannot linger in the LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    point: u128,
    k: usize,
}

/// A per-thread LRU memoizing filter output, distance distributions, and
/// subregion tables by quantized query point. See the [module
/// docs](self) for the key design and the correctness argument; the
/// high-level entry points are [`crate::QueryScratch::with_cache`] and
/// [`crate::PipelineConfig`]'s `cache` field.
///
/// ```
/// use cpnn_core::cache::{CacheConfig, CachedQuery, VerifyCache};
/// use cpnn_core::{CandidateSet, ObjectId, UncertainObject};
/// use std::sync::Arc;
///
/// let objects = vec![UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap()];
/// let cands = Arc::new(CandidateSet::build(&objects, 0.0, 0).unwrap());
/// let mut cache = VerifyCache::new(CacheConfig::new(2, 0.0));
///
/// let point = cpnn_core::cache::point_key_1d(0.0);
/// assert!(cache.lookup(point, 1).is_none()); // miss
/// cache.insert(point, 1, CachedQuery::new(cands));
/// assert!(cache.lookup(point, 1).is_some()); // hit
///
/// // A snapshot-version change invalidates everything.
/// cache.set_version(1);
/// assert!(cache.lookup(point, 1).is_none());
/// assert_eq!(cache.stats().invalidations, 1);
/// ```
#[derive(Debug)]
pub struct VerifyCache {
    config: CacheConfig,
    /// The snapshot version the cached entries were computed against.
    version: u64,
    /// Object count of the database the entries were computed against
    /// (`None` until the first query) — a defense-in-depth guard for the
    /// public `cpnn_with` seam: an in-place `insert`/`remove` on the
    /// model, or reusing one scratch across differently-sized databases,
    /// changes the count and invalidates even though no snapshot version
    /// ever moved. Equal-count mutations still need
    /// [`set_version`](Self::set_version) (or a fresh scratch) — the
    /// serving path always provides exactly that.
    source_objects: Option<usize>,
    /// Entry → (last-use tick, state). Eviction scans for the minimum
    /// tick — O(capacity), fine for the few-hundred-entry caches this is
    /// built for and free of unsafe linked-list bookkeeping.
    map: HashMap<Key, (u64, CachedQuery)>,
    tick: u64,
    stats: CacheStats,
}

impl VerifyCache {
    /// A fresh cache (snapshot version 0).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            version: 0,
            source_objects: None,
            map: HashMap::with_capacity(config.capacity.min(1024)),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The quantization grid width.
    pub fn quantum(&self) -> f64 {
        self.config.quantum
    }

    /// The snapshot version current entries belong to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of memoized query points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters (not reset by invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Pin the snapshot version. Moving to a *different* version drops
    /// every entry — the memoized candidate sets were computed against a
    /// database that no longer serves — and counts one invalidation (if
    /// anything was dropped). Idempotent for the current version.
    pub fn set_version(&mut self, version: u64) {
        if version == self.version {
            return;
        }
        self.version = version;
        if !self.map.is_empty() {
            self.map.clear();
            self.stats.invalidations += 1;
        }
    }

    /// Pin the snapshot version **incrementally**: instead of clearing,
    /// drop only the entries whose cached candidate horizon intersects one
    /// of the `regions` the intervening updates touched (see
    /// [`CachedQuery::for_query`] for why surviving entries are provably
    /// still exact). Entries without query coordinates are dropped
    /// conservatively. Idempotent for the current version; moving
    /// *backwards* falls back to a full clear (the regions walked forward
    /// do not describe the reverse trip).
    pub fn advance_version(&mut self, version: u64, regions: &[Extent]) {
        if version == self.version {
            return;
        }
        if version < self.version {
            self.set_version(version);
            return;
        }
        self.version = version;
        // The source-object count moves with every applied update; the
        // version move is the sanctioned invalidation here, so re-arm the
        // count guard instead of letting it clear the survivors.
        self.source_objects = None;
        let before = self.map.len();
        self.map
            .retain(|_, (_, entry)| regions.iter().all(|r| entry.survives(r)));
        self.stats.region_evictions += (before - self.map.len()) as u64;
    }

    /// Drop every entry without touching counters or version.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Pin the object count of the database about to be queried,
    /// invalidating every entry if it moved since the last query (see
    /// the `source_objects` field docs — the guard that catches in-place
    /// mutation and cross-database scratch reuse without a version
    /// change). The pipeline calls this on every cached query.
    pub fn pin_source(&mut self, total_objects: usize) {
        if self.source_objects == Some(total_objects) {
            return;
        }
        if self.source_objects.is_some() && !self.map.is_empty() {
            self.map.clear();
            self.stats.invalidations += 1;
        }
        self.source_objects = Some(total_objects);
    }

    /// Look up the memoized state for a snapped point and neighbor count,
    /// counting a hit or miss.
    pub fn lookup(&mut self, point: u128, k: usize) -> Option<CachedQuery> {
        self.tick += 1;
        match self.map.get_mut(&Key { point, k }) {
            Some((tick, entry)) => {
                *tick = self.tick;
                self.stats.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoize freshly computed state, evicting the least-recently-used
    /// entry if the cache is full. No-op at capacity 0.
    pub fn insert(&mut self, point: u128, k: usize, entry: CachedQuery) {
        if self.config.capacity == 0 {
            return;
        }
        let key = Key { point, k };
        if self.map.len() >= self.config.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, entry));
    }

    /// Attach a just-built subregion table to an existing entry (the
    /// table is built lazily by the first strategy that needs one).
    /// Ignored if the entry was evicted in the meantime or already has a
    /// table.
    pub fn attach_table(&mut self, point: u128, k: usize, table: Arc<SubregionTable>) {
        if let Some((_, entry)) = self.map.get_mut(&Key { point, k }) {
            if entry.table.is_none() {
                entry.table = Some(table);
            }
        }
    }

    /// Attach a just-evaluated verification outcome to an existing entry
    /// (see [`CachedQuery::record_outcome`]). Ignored if the entry was
    /// evicted in the meantime.
    pub fn attach_outcome(
        &mut self,
        point: u128,
        k: usize,
        key: OutcomeKey,
        reports: Arc<Vec<crate::pipeline::ObjectReport>>,
    ) {
        if let Some((_, entry)) = self.map.get_mut(&Key { point, k }) {
            entry.record_outcome(key, reports);
        }
    }

    /// Reclassify the latest counted miss as a shared-tier hit: the
    /// pipeline counts a local miss in [`lookup`](Self::lookup) first,
    /// then consults the L2, and calls this when the L2 answered. Keeps
    /// `lookups()` counting every query exactly once.
    pub fn promote_miss_to_shared_hit(&mut self) {
        debug_assert!(self.stats.misses > 0, "no miss to promote");
        self.stats.misses = self.stats.misses.saturating_sub(1);
        self.stats.shared_hits += 1;
    }

    /// Count one outcome-memo hit (an entry hit whose memoized reports
    /// short-circuited verify/refine).
    pub fn note_outcome_hit(&mut self) {
        self.stats.outcome_hits += 1;
    }
}

/// Tuning for the process-wide [`SharedVerifyCache`] tier. Lives inside
/// [`crate::PipelineConfig`] next to the per-thread `cache` knob; the
/// tier only engages when **both** are enabled (the shared tier is an L2
/// behind the local L1 — a local miss consults it, a local fill
/// publishes upward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedCacheConfig {
    /// Total memoized query points across all segments; `0` disables the
    /// tier entirely (the default).
    pub capacity: usize,
    /// Entry lifetime: a published entry older than this is expired on
    /// lookup (and counts as a miss). `None` (the default) never expires
    /// by age — version/region invalidation still applies. Expiry never
    /// changes an answer, only whether the state is recomputed.
    pub ttl: Option<Duration>,
    /// Admit a key on its first publish attempt instead of the default
    /// **second-sight** admission (first attempt only records the key;
    /// the next attempt admits it). Second sight keeps adversarial
    /// point churn — a stream of never-repeated points — from thrashing
    /// entries that are actually hot.
    pub admit_first_sight: bool,
}

impl SharedCacheConfig {
    /// A shared tier of `capacity` entries with second-sight admission
    /// and no TTL.
    ///
    /// ```
    /// use cpnn_core::cache::SharedCacheConfig;
    /// let cfg = SharedCacheConfig::new(1024);
    /// assert!(cfg.is_enabled());
    /// assert!(!SharedCacheConfig::disabled().is_enabled());
    /// ```
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ttl: None,
            admit_first_sight: false,
        }
    }

    /// The no-tier configuration (also the [`Default`]).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            ttl: None,
            admit_first_sight: false,
        }
    }

    /// Same configuration with an entry lifetime.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Same configuration admitting entries on first sight (useful when
    /// the workload is known-hot, and in tests that need deterministic
    /// single-pass warming).
    pub fn admit_immediately(mut self) -> Self {
        self.admit_first_sight = true;
        self
    }

    /// Does this configuration share anything at all?
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

impl Default for SharedCacheConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Cumulative counters of a [`SharedVerifyCache`], aggregated across all
/// segments (relaxed atomics — totals, not a consistent snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the tier.
    pub hits: u64,
    /// Lookups the tier could not answer (absent, wrong version, or
    /// expired).
    pub misses: u64,
    /// Entries admitted into a segment.
    pub admitted: u64,
    /// Publish attempts deferred by second-sight admission (the key was
    /// only recorded; its next publish admits).
    pub deferred: u64,
    /// Entries dropped because their TTL elapsed.
    pub expired: u64,
    /// Segment clears (version mismatch, backwards move, or unknown
    /// update footprint).
    pub invalidations: u64,
    /// Entries dropped by incremental (region-scoped) invalidation.
    pub region_evictions: u64,
}

/// Upper bound on lock-striped segments; the actual count never exceeds
/// the configured capacity, so tiny tiers do not scatter one entry per
/// lock.
const SHARED_SEGMENTS: usize = 16;

/// One lock-striped segment of the shared tier. The version and source
/// pin are **per segment**, checked under the segment's own mutex: a
/// publish racing an [`SharedVerifyCache::advance_version`] walk either
/// lands before the walk reaches the segment (and is region-checked by
/// it) or carries a stale version and is dropped — no global lock, no
/// stale entry, in either order.
#[derive(Debug)]
struct Segment {
    version: u64,
    source: Option<usize>,
    tick: u64,
    map: HashMap<Key, SharedSlot>,
    /// Second-sight admission ledger: key → tick of its recorded first
    /// sighting. Bounded; oldest sightings are forgotten under churn.
    seen: HashMap<Key, u64>,
}

#[derive(Debug)]
struct SharedSlot {
    tick: u64,
    created: Instant,
    entry: CachedQuery,
}

/// The process-wide L2 behind every worker's [`VerifyCache`]: a
/// lock-striped concurrent map over the same `(snapped point bits, k)`
/// keys, so one worker's miss warms every worker. At `T` serve threads
/// the effective hit rate on hot-spot traffic multiplies instead of
/// dividing by `T` — a repeat query hits no matter which worker the
/// scheduler lands it on.
///
/// **Eviction** is segmented LRU: each segment evicts its own
/// least-recently-used entry under its own mutex, so a hot segment never
/// takes a global lock. **Invalidation** mirrors the local tier:
/// [`advance_version`](Self::advance_version) walks the segments with
/// the same region-journal survivor test the per-thread map uses, and
/// the server fans it out *before* a new snapshot becomes visible (see
/// `server.rs`), so no worker can be pinned to a version whose segments
/// have not been walked. **Admission + TTL**
/// ([`SharedCacheConfig`]) keep adversarial point churn from thrashing
/// the tier.
///
/// ```
/// use cpnn_core::cache::{CachedQuery, SharedCacheConfig, SharedVerifyCache};
/// use cpnn_core::{CandidateSet, ObjectId, UncertainObject};
/// use std::sync::Arc;
///
/// let objects = vec![UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap()];
/// let cands = Arc::new(CandidateSet::build(&objects, 0.0, 0).unwrap());
/// let tier = SharedVerifyCache::new(SharedCacheConfig::new(64).admit_immediately());
///
/// let point = cpnn_core::cache::point_key_1d(0.0);
/// assert!(tier.lookup(point, 1, 0, 1).is_none()); // miss
/// assert!(tier.publish(point, 1, 0, 1, CachedQuery::new(cands)));
/// assert!(tier.lookup(point, 1, 0, 1).is_some()); // any thread hits now
/// assert!(tier.lookup(point, 1, 9, 1).is_none()); // other versions never hit
/// ```
#[derive(Debug)]
pub struct SharedVerifyCache {
    config: SharedCacheConfig,
    /// Per-segment entry budget (`ceil(capacity / segments)`).
    per_segment: usize,
    segments: Vec<Mutex<Segment>>,
    hits: AtomicU64,
    misses: AtomicU64,
    admitted: AtomicU64,
    deferred: AtomicU64,
    expired: AtomicU64,
    invalidations: AtomicU64,
    region_evictions: AtomicU64,
}

impl SharedVerifyCache {
    /// A fresh tier at snapshot version 0.
    pub fn new(config: SharedCacheConfig) -> Self {
        Self::new_at(config, 0)
    }

    /// A fresh tier whose segments start pinned at `version` (servers
    /// resuming from a recovered snapshot start their tier at the
    /// recovered version).
    pub fn new_at(config: SharedCacheConfig, version: u64) -> Self {
        let nsegs = SHARED_SEGMENTS.min(config.capacity.max(1));
        let per_segment = config.capacity.max(1).div_ceil(nsegs);
        let segments = (0..nsegs)
            .map(|_| {
                Mutex::new(Segment {
                    version,
                    source: None,
                    tick: 0,
                    map: HashMap::new(),
                    seen: HashMap::new(),
                })
            })
            .collect();
        Self {
            config,
            per_segment,
            segments,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            region_evictions: AtomicU64::new(0),
        }
    }

    /// The configuration this tier runs under.
    pub fn config(&self) -> &SharedCacheConfig {
        &self.config
    }

    /// Number of lock-striped segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Total entries across all segments (advisory; segments are locked
    /// one at a time).
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("shared-cache segment poisoned").map.len())
            .sum()
    }

    /// Is the tier empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters across all segments.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            region_evictions: self.region_evictions.load(Ordering::Relaxed),
        }
    }

    fn segment_of(&self, key: &Key) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.segments.len() as u64) as usize
    }

    /// Pin `seg` to (version, source). Returns `false` — caller must
    /// bail — when the caller's version does not match the segment's.
    /// A moved source count clears the segment (same in-place-mutation
    /// guard as [`VerifyCache::pin_source`], striped per segment).
    fn pin(&self, seg: &mut Segment, version: u64, total_objects: usize) -> bool {
        if seg.version != version {
            return false;
        }
        if seg.source != Some(total_objects) {
            if seg.source.is_some() && !seg.map.is_empty() {
                seg.map.clear();
                seg.seen.clear();
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            seg.source = Some(total_objects);
        }
        true
    }

    /// Look up the shared state for a snapped point and neighbor count,
    /// on behalf of a caller pinned to snapshot `version` of a database
    /// with `total_objects` objects. Counts a hit or miss; a hit clones
    /// the entry out (two refcount bumps) and refreshes its LRU tick.
    pub fn lookup(
        &self,
        point: u128,
        k: usize,
        version: u64,
        total_objects: usize,
    ) -> Option<CachedQuery> {
        if !self.config.is_enabled() {
            return None;
        }
        let key = Key { point, k };
        let mut seg = self.segments[self.segment_of(&key)]
            .lock()
            .expect("shared-cache segment poisoned");
        if !self.pin(&mut seg, version, total_objects) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if let Some(ttl) = self.config.ttl {
            if seg
                .map
                .get(&key)
                .is_some_and(|slot| slot.created.elapsed() >= ttl)
            {
                seg.map.remove(&key);
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
        }
        seg.tick += 1;
        let tick = seg.tick;
        match seg.map.get_mut(&key) {
            Some(slot) => {
                slot.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish freshly computed state upward. Returns whether the entry
    /// was actually admitted: a stale `version` is dropped (the tier has
    /// moved on), second-sight admission defers a first-seen key, and a
    /// full segment evicts its LRU entry to make room. Republishing an
    /// existing key replaces the entry (and refreshes its TTL clock).
    pub fn publish(
        &self,
        point: u128,
        k: usize,
        version: u64,
        total_objects: usize,
        entry: CachedQuery,
    ) -> bool {
        if !self.config.is_enabled() {
            return false;
        }
        let key = Key { point, k };
        let mut seg = self.segments[self.segment_of(&key)]
            .lock()
            .expect("shared-cache segment poisoned");
        if !self.pin(&mut seg, version, total_objects) {
            return false;
        }
        seg.tick += 1;
        let tick = seg.tick;
        if let Some(slot) = seg.map.get_mut(&key) {
            *slot = SharedSlot {
                tick,
                created: Instant::now(),
                entry,
            };
            return true;
        }
        let admit = self.config.admit_first_sight || seg.seen.remove(&key).is_some();
        if !admit {
            // Record the sighting; bound the ledger by forgetting the
            // oldest sightings under churn.
            if seg.seen.len() >= self.per_segment.saturating_mul(4).max(8) {
                if let Some(oldest) = seg.seen.iter().min_by_key(|(_, t)| **t).map(|(k, _)| *k) {
                    seg.seen.remove(&oldest);
                }
            }
            seg.seen.insert(key, tick);
            self.deferred.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if seg.map.len() >= self.per_segment {
            if let Some(oldest) = seg
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(k, _)| *k)
            {
                seg.map.remove(&oldest);
            }
        }
        seg.map.insert(
            key,
            SharedSlot {
                tick,
                created: Instant::now(),
                entry,
            },
        );
        self.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Attach a just-built subregion table to a shared entry (no-op if
    /// the entry is absent or the caller's version is stale).
    pub fn attach_table(&self, point: u128, k: usize, version: u64, table: Arc<SubregionTable>) {
        let key = Key { point, k };
        let mut seg = self.segments[self.segment_of(&key)]
            .lock()
            .expect("shared-cache segment poisoned");
        if seg.version != version {
            return;
        }
        if let Some(slot) = seg.map.get_mut(&key) {
            slot.entry.set_table(table);
        }
    }

    /// Attach a just-evaluated verification outcome to a shared entry
    /// (no-op if the entry is absent or the caller's version is stale).
    pub fn attach_outcome(
        &self,
        point: u128,
        k: usize,
        version: u64,
        okey: OutcomeKey,
        reports: Arc<Vec<crate::pipeline::ObjectReport>>,
    ) {
        let key = Key { point, k };
        let mut seg = self.segments[self.segment_of(&key)]
            .lock()
            .expect("shared-cache segment poisoned");
        if seg.version != version {
            return;
        }
        if let Some(slot) = seg.map.get_mut(&key) {
            slot.entry.record_outcome(okey, reports);
        }
    }

    /// Advance every segment to snapshot `version`, dropping only entries
    /// whose candidate horizon one of the update `regions` intersects —
    /// the same survivor test as [`VerifyCache::advance_version`], striped
    /// per segment. `None` regions (unknown footprint) or a backwards
    /// move clears the segment. The server calls this under its writer
    /// lock *before* the new snapshot becomes visible, so no worker is
    /// ever pinned to a version whose segments still hold unwalked
    /// entries; a concurrent publish carrying the old version is dropped
    /// by the per-segment version check (each segment records the last
    /// version walked).
    pub fn advance_version(&self, version: u64, regions: Option<&[Extent]>) {
        for segment in &self.segments {
            let mut seg = segment.lock().expect("shared-cache segment poisoned");
            if seg.version == version {
                continue;
            }
            let forward = version > seg.version;
            seg.version = version;
            seg.source = None;
            seg.seen.clear();
            match regions {
                Some(regions) if forward => {
                    let before = seg.map.len();
                    seg.map
                        .retain(|_, slot| regions.iter().all(|r| slot.entry.survives(r)));
                    self.region_evictions
                        .fetch_add((before - seg.map.len()) as u64, Ordering::Relaxed);
                }
                _ => {
                    if !seg.map.is_empty() {
                        seg.map.clear();
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectId, UncertainObject};

    fn entry(q: f64) -> CachedQuery {
        let objects = vec![UncertainObject::uniform(ObjectId(7), 1.0, 3.0).unwrap()];
        CachedQuery::new(Arc::new(CandidateSet::build(&objects, q, 0).unwrap()))
    }

    #[test]
    fn quantize_snaps_to_grid_and_zero_is_identity() {
        assert_eq!(quantize_coord(4203.7, 10.0), 4200.0);
        assert_eq!(quantize_coord(-4203.7, 10.0), -4200.0);
        assert_eq!(quantize_coord(4205.0, 10.0), 4210.0); // ties round away
        assert_eq!(quantize_coord(1.23456, 0.0), 1.23456);
        assert_eq!(quantize_coord(1.23456, -1.0), 1.23456);
        assert!(quantize_coord(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn point_keys_are_bit_exact_and_dimension_distinct() {
        assert_eq!(point_key_1d(1.5), point_key_1d(1.5));
        assert_ne!(point_key_1d(1.5), point_key_1d(1.5 + f64::EPSILON));
        assert_ne!(point_key_2d([1.0, 2.0]), point_key_2d([2.0, 1.0]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = VerifyCache::new(CacheConfig::new(2, 0.0));
        cache.insert(1, 1, entry(0.0));
        cache.insert(2, 1, entry(0.0));
        // Touch 1, then insert 3: 2 is the LRU victim.
        assert!(cache.lookup(1, 1).is_some());
        cache.insert(3, 1, entry(0.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, 1).is_some());
        assert!(cache.lookup(2, 1).is_none());
        assert!(cache.lookup(3, 1).is_some());
    }

    #[test]
    fn k_is_part_of_the_key() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.insert(1, 1, entry(0.0));
        assert!(cache.lookup(1, 2).is_none());
        assert!(cache.lookup(1, 1).is_some());
    }

    #[test]
    fn version_change_clears_but_counters_survive() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.insert(1, 1, entry(0.0));
        assert!(cache.lookup(1, 1).is_some());
        cache.set_version(1);
        assert!(cache.is_empty());
        assert!(cache.lookup(1, 1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 1));
        // Same version again: no further invalidation.
        cache.set_version(1);
        assert_eq!(cache.stats().invalidations, 1);
        // Clearing an empty cache on a version move counts nothing.
        cache.set_version(2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn attach_table_fills_once_and_tolerates_eviction() {
        let mut cache = VerifyCache::new(CacheConfig::new(1, 0.0));
        cache.insert(1, 1, entry(0.0));
        let e = cache.lookup(1, 1).unwrap();
        assert!(e.table().is_none());
        let table = Arc::new(SubregionTable::build(e.candidates()));
        cache.attach_table(1, 1, Arc::clone(&table));
        let e = cache.lookup(1, 1).unwrap();
        assert!(e.table().is_some());
        // A second attach does not replace the first.
        cache.attach_table(1, 1, Arc::new(SubregionTable::build(e.candidates())));
        let again = cache.lookup(1, 1).unwrap();
        assert!(Arc::ptr_eq(again.table().unwrap(), &table));
        // Attaching to an evicted key is a no-op.
        cache.insert(2, 1, entry(0.0));
        cache.attach_table(1, 1, table);
        assert!(cache.lookup(1, 1).is_none());
    }

    #[test]
    fn pin_source_invalidates_on_count_change_only() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.pin_source(10);
        cache.insert(1, 1, entry(0.0));
        // Same count: entries survive.
        cache.pin_source(10);
        assert!(cache.lookup(1, 1).is_some());
        // Count moved (in-place insert / different database): clear.
        cache.pin_source(11);
        assert!(cache.lookup(1, 1).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn capacity_zero_never_stores() {
        let mut cache = VerifyCache::new(CacheConfig::disabled());
        cache.insert(1, 1, entry(0.0));
        assert!(cache.is_empty());
        assert!(cache.lookup(1, 1).is_none());
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(a.hit_rate(), 0.75);
        a.accumulate(&CacheStats {
            hits: 1,
            misses: 3,
            shared_hits: 2,
            outcome_hits: 1,
            invalidations: 2,
            region_evictions: 5,
        });
        assert_eq!((a.hits, a.misses, a.invalidations), (4, 4, 2));
        assert_eq!((a.shared_hits, a.outcome_hits), (2, 1));
        assert_eq!(a.region_evictions, 5);
        assert_eq!(a.lookups(), 10);
        assert_eq!(a.hit_rate(), 0.6);
    }

    #[test]
    fn promote_and_outcome_counters_keep_lookups_consistent() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        assert!(cache.lookup(1, 1).is_none()); // miss...
        cache.promote_miss_to_shared_hit(); // ...answered by the L2
        cache.note_outcome_hit();
        let s = cache.stats();
        assert_eq!((s.hits, s.shared_hits, s.misses), (0, 1, 0));
        assert_eq!(s.outcome_hits, 1);
        assert_eq!(s.lookups(), 1);
        assert_eq!(s.hit_rate(), 1.0);
    }

    #[test]
    fn advance_version_drops_only_intersecting_entries() {
        let objects = vec![UncertainObject::uniform(ObjectId(7), 1.0, 3.0).unwrap()];
        let at = |q: f64| {
            CachedQuery::for_query(
                Arc::new(CandidateSet::build(&objects, q, 0).unwrap()),
                Some(vec![q]),
                1,
            )
        };
        let mut cache = VerifyCache::new(CacheConfig::new(8, 0.0));
        // Entry at q = 0: horizon = far point of [1, 3] from 0 → 3.
        cache.insert(point_key_1d(0.0), 1, at(0.0));
        // Entry without coordinates: always dropped on region passes.
        cache.insert(
            point_key_1d(50.0),
            1,
            CachedQuery::new(Arc::new(CandidateSet::build(&objects, 50.0, 0).unwrap())),
        );
        // Far-away update region [100, 101]: mindist from q = 0 is 100 > 3,
        // so the coordinate-bearing entry survives; the bare one drops.
        cache.advance_version(1, &[Extent::new(vec![100.0], vec![101.0])]);
        assert_eq!(cache.version(), 1);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_some());
        assert!(cache.lookup(point_key_1d(50.0), 1).is_none());
        assert_eq!(cache.stats().region_evictions, 1);
        assert_eq!(cache.stats().invalidations, 0, "no full clear happened");
        // A region inside the horizon (mindist 1 ≤ 3) drops the entry.
        cache.advance_version(2, &[Extent::new(vec![-2.0], vec![-1.0])]);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_none());
        assert_eq!(cache.stats().region_evictions, 2);
        // Same version again: no-op. Backwards: full clear.
        cache.insert(point_key_1d(0.0), 1, at(0.0));
        cache.advance_version(2, &[Extent::new(vec![0.0], vec![1.0])]);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_some());
        cache.advance_version(0, &[]);
        assert!(cache.is_empty());
    }

    /// A coordinate-bearing shared entry at query point `q`.
    fn shared_entry(q: f64) -> CachedQuery {
        let objects = vec![UncertainObject::uniform(ObjectId(7), 1.0, 3.0).unwrap()];
        CachedQuery::for_query(
            Arc::new(CandidateSet::build(&objects, q, 0).unwrap()),
            Some(vec![q]),
            1,
        )
    }

    #[test]
    fn shared_tier_second_sight_admission() {
        let tier = SharedVerifyCache::new(SharedCacheConfig::new(64));
        let p = point_key_1d(0.0);
        // First publish only records the sighting.
        assert!(!tier.publish(p, 1, 0, 1, shared_entry(0.0)));
        assert!(tier.lookup(p, 1, 0, 1).is_none());
        // Second publish admits.
        assert!(tier.publish(p, 1, 0, 1, shared_entry(0.0)));
        assert!(tier.lookup(p, 1, 0, 1).is_some());
        let s = tier.stats();
        assert_eq!((s.deferred, s.admitted), (1, 1));
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn shared_tier_version_and_source_guards() {
        let tier = SharedVerifyCache::new(SharedCacheConfig::new(64).admit_immediately());
        let p = point_key_1d(0.0);
        assert!(tier.publish(p, 1, 0, 1, shared_entry(0.0)));
        // A stale-version publish or lookup never touches current state.
        assert!(!tier.publish(p, 1, 7, 1, shared_entry(0.0)));
        assert!(tier.lookup(p, 1, 7, 1).is_none());
        assert!(tier.lookup(p, 1, 0, 1).is_some());
        // A moved object count clears the segment (in-place mutation guard).
        assert!(tier.lookup(p, 1, 0, 2).is_none());
        assert!(tier.lookup(p, 1, 0, 2).is_none());
        assert!(tier.stats().invalidations >= 1);
    }

    #[test]
    fn shared_tier_ttl_expires_entries() {
        let tier = SharedVerifyCache::new(
            SharedCacheConfig::new(64)
                .admit_immediately()
                .with_ttl(Duration::ZERO),
        );
        let p = point_key_1d(0.0);
        assert!(tier.publish(p, 1, 0, 1, shared_entry(0.0)));
        assert_eq!(tier.len(), 1);
        // Zero TTL: expired by the time any lookup sees it.
        assert!(tier.lookup(p, 1, 0, 1).is_none());
        assert!(tier.is_empty());
        assert_eq!(tier.stats().expired, 1);
    }

    #[test]
    fn shared_tier_segmented_lru_eviction_is_bounded() {
        let tier = SharedVerifyCache::new(SharedCacheConfig::new(16).admit_immediately());
        assert!(tier.segments() <= SHARED_SEGMENTS);
        for i in 0..200u64 {
            tier.publish(point_key_1d(i as f64), 1, 0, 1, shared_entry(i as f64));
        }
        // Per-segment LRU keeps the total at or under capacity.
        assert!(tier.len() <= 16, "len {} exceeds capacity", tier.len());
    }

    #[test]
    fn shared_tier_advance_version_walks_every_segment() {
        let tier = SharedVerifyCache::new(SharedCacheConfig::new(256).admit_immediately());
        // Spread entries across segments; all have horizon 3 around ~0.
        for i in 0..32u64 {
            let q = i as f64 * 0.001;
            assert!(tier.publish(point_key_1d(q), 1, 0, 1, shared_entry(q)));
        }
        assert_eq!(tier.len(), 32);
        // Far-away region: every entry survives, in every segment.
        tier.advance_version(1, Some(&[Extent::new(vec![100.0], vec![101.0])]));
        assert_eq!(tier.len(), 32);
        assert!(tier.lookup(point_key_1d(0.0), 1, 1, 1).is_some());
        assert!(
            tier.lookup(point_key_1d(0.0), 1, 0, 1).is_none(),
            "old version"
        );
        // Near region: every entry drops, in every segment.
        tier.advance_version(2, Some(&[Extent::new(vec![0.5], vec![1.5])]));
        assert!(tier.is_empty());
        assert_eq!(tier.stats().region_evictions, 32);
        // Unknown footprint clears.
        assert!(tier.publish(point_key_1d(0.0), 1, 2, 1, shared_entry(0.0)));
        tier.advance_version(3, None);
        assert!(tier.is_empty());
    }

    #[test]
    fn cached_query_outcome_memo_is_bounded_and_exact() {
        use crate::pipeline::{PipelineConfig, QuerySpec};
        use crate::Strategy;
        let mut e = shared_entry(0.0);
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
        let key = OutcomeKey::new(&spec, &cfg);
        assert!(e.outcome(&key).is_none());
        e.record_outcome(key, Arc::new(Vec::new()));
        assert!(e.outcome(&key).is_some());
        // A different band misses; the threshold is keyed bit-exactly.
        let other = OutcomeKey::new(&QuerySpec::nn(0.4, 0.01, Strategy::Verified), &cfg);
        assert!(e.outcome(&other).is_none());
        // MonteCarlo seeds are part of the band.
        let mc1 = OutcomeKey::new(
            &QuerySpec::nn(
                0.3,
                0.01,
                Strategy::MonteCarlo {
                    worlds: 64,
                    seed: 1,
                },
            ),
            &cfg,
        );
        let mc2 = OutcomeKey::new(
            &QuerySpec::nn(
                0.3,
                0.01,
                Strategy::MonteCarlo {
                    worlds: 64,
                    seed: 2,
                },
            ),
            &cfg,
        );
        assert_ne!(mc1, mc2);
        // The memo list is bounded, evicting oldest-first.
        for i in 0..(OUTCOME_CAP + 2) {
            let spec = QuerySpec::nn(0.01 + i as f64 * 0.05, 0.0, Strategy::Verified);
            e.record_outcome(OutcomeKey::new(&spec, &cfg), Arc::new(Vec::new()));
        }
        assert!(e.outcome(&key).is_none(), "oldest band evicted");
    }
}
