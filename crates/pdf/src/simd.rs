//! Runtime-dispatched SIMD tiers and the vector interpolation kernel used
//! by [`HistogramPdf::cdf_many_into`](crate::HistogramPdf::cdf_many_into).
//!
//! This module is the single source of truth for "which vector lanes may
//! this process use": the verifier kernels in `cpnn-core` re-export
//! [`SimdTier`] / [`active_tier`] from here so the whole stack dispatches
//! off one cached decision.
//!
//! # Bit-identity contract
//!
//! Every vector path in this workspace evaluates **exactly the same IEEE-754
//! expression sequence as its scalar reference, lane-wise** — only loops
//! whose iterations are independent are vectorized, reductions keep scalar
//! order, and no FMA contraction is used where the scalar code performs a
//! separate multiply and add (`vmulpd` + `vaddpd`, never `vfmadd`). Since
//! `addpd`/`subpd`/`mulpd`/`divpd` are IEEE-correctly-rounded per lane, the
//! vector result is bit-identical to the scalar one; the property tests in
//! `cpnn-core` assert this with `to_bits()` equality at every tier.
//!
//! # Dispatch
//!
//! The tier is detected once (`is_x86_feature_detected!`) and cached in a
//! [`OnceLock`]. The environment variable `CPNN_SIMD` overrides detection
//! at first use — `off` (scalar), `sse2`, or `avx2` — and is capped at what
//! the CPU actually supports, so forcing `avx2` on a non-AVX2 host safely
//! degrades instead of faulting. Benchmarks and tests may additionally flip
//! tiers *within* a process via [`force_tier`]; because every tier is
//! bit-identical, a mid-flight tier switch can change performance only,
//! never results.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The instruction-set tier a kernel dispatches to.
///
/// Ordered: a larger tier is a superset of the smaller ones, and forced
/// tiers are capped at the detected maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Pure scalar kernels (the retained reference implementations).
    Scalar,
    /// 128-bit `std::arch` lanes (baseline on every `x86_64`).
    Sse2,
    /// 256-bit `std::arch` lanes (AVX2; FMA is detected and reported but
    /// deliberately never used for contraction — see the module docs).
    Avx2,
}

impl SimdTier {
    /// Stable lower-case name (`"scalar"`, `"sse2"`, `"avx2"`), used in
    /// bench JSON headers and the `CPNN_SIMD` override.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// `f64` lanes per vector register at this tier.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse2 => 2,
            SimdTier::Avx2 => 4,
        }
    }

    /// Every tier the current process can run, best first — the probe list
    /// for "prove bit-identity at all tiers" test sweeps.
    pub fn available() -> Vec<SimdTier> {
        let mut tiers = vec![cpu_max_tier()];
        if tiers[0] == SimdTier::Avx2 {
            tiers.push(SimdTier::Sse2);
        }
        if tiers.last() != Some(&SimdTier::Scalar) {
            tiers.push(SimdTier::Scalar);
        }
        tiers
    }
}

/// Highest tier the CPU supports, independent of overrides.
fn cpu_max_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        // SSE2 is part of the x86_64 baseline.
        SimdTier::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Tier decided at first use: CPU capability, capped by `CPNN_SIMD`.
fn detect_tier() -> SimdTier {
    let max = cpu_max_tier();
    match std::env::var("CPNN_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" => SimdTier::Scalar,
            "sse2" => SimdTier::Sse2.min(max),
            "avx2" => SimdTier::Avx2.min(max),
            other => {
                eprintln!("CPNN_SIMD={other:?} not recognized (want off|sse2|avx2); using auto");
                max
            }
        },
        Err(_) => max,
    }
}

static DETECTED: OnceLock<SimdTier> = OnceLock::new();
/// In-process override slot for benches/tests: 0 = none, otherwise tier + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The tier detected for this process (CPU features ∧ `CPNN_SIMD`),
/// computed once and cached.
pub fn detected_tier() -> SimdTier {
    *DETECTED.get_or_init(detect_tier)
}

/// The tier kernels dispatch to *right now*: [`force_tier`] override if
/// set, else [`detected_tier`].
#[inline]
pub fn active_tier() -> SimdTier {
    match FORCED.load(Ordering::Relaxed) {
        0 => detected_tier(),
        1 => SimdTier::Scalar,
        2 => SimdTier::Sse2,
        _ => SimdTier::Avx2,
    }
}

/// Force a dispatch tier for this process (benches and tier-sweep tests);
/// `None` restores auto-detection. The request is capped at the CPU's
/// capability, and the *effective* tier is returned.
///
/// Safe to call at any time: all tiers are bit-identical, so flipping the
/// tier mid-flight affects speed only, never results.
pub fn force_tier(tier: Option<SimdTier>) -> SimdTier {
    match tier {
        None => {
            FORCED.store(0, Ordering::Relaxed);
            detected_tier()
        }
        Some(t) => {
            let eff = t.min(cpu_max_tier());
            FORCED.store(
                match eff {
                    SimdTier::Scalar => 1,
                    SimdTier::Sse2 => 2,
                    SimdTier::Avx2 => 3,
                },
                Ordering::Relaxed,
            );
            eff
        }
    }
}

/// Comma-joined list of the vector features this CPU reports (probed once),
/// recorded in bench JSON headers so perf series are comparable across
/// machines.
pub fn cpu_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut found: Vec<&str> = vec!["sse2"];
            if std::arch::is_x86_feature_detected!("sse4.2") {
                found.push("sse4.2");
            }
            if std::arch::is_x86_feature_detected!("avx") {
                found.push("avx");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                found.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("fma") {
                found.push("fma");
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                found.push("avx512f");
            }
            found.join(",")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            String::from("none")
        }
    })
}

/// Piecewise-linear cdf interpolation over one histogram-bin *run*:
/// `out[i] = (c + d · (xs[i] − e)).clamp(0, 1)` for every lane, where
/// `c`/`d`/`e` are the bin's cumulative mass, density, and left edge.
///
/// Bit-identical to the scalar expression in
/// [`Pdf::cdf`](crate::traits::Pdf::cdf): per lane it performs the same
/// `sub → mul → add → clamp` sequence (no FMA), and the clamp replicates
/// `f64::clamp` semantics exactly (`< 0 → 0`, `> 1 → 1`, all other values
/// — including `-0.0` and NaN — pass through).
#[inline]
pub fn fill_interp(c: f64, d: f64, e: f64, xs: &[f64], out: &mut [f64]) {
    debug_assert_eq!(xs.len(), out.len());
    // Bin runs are usually shorter than one vector register (sorted
    // end-points spread across the histogram's bins); below one AVX2 lane
    // count the dispatch can't win, and scalar ≡ vector bit-for-bit, so
    // the fast path is free to skip it.
    if xs.len() < 4 {
        return fill_interp_scalar(c, d, e, xs, out);
    }
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { fill_interp_avx2(c, d, e, xs, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { fill_interp_sse2(c, d, e, xs, out) },
        _ => fill_interp_scalar(c, d, e, xs, out),
    }
}

/// Scalar reference for [`fill_interp`].
pub fn fill_interp_scalar(c: f64, d: f64, e: f64, xs: &[f64], out: &mut [f64]) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = (c + d * (x - e)).clamp(0.0, 1.0);
    }
}

/// # Safety
/// Requires AVX2 support (guaranteed by the [`active_tier`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_interp_avx2(c: f64, d: f64, e: f64, xs: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let cv = _mm256_set1_pd(c);
    let dv = _mm256_set1_pd(d);
    let ev = _mm256_set1_pd(e);
    let zero = _mm256_setzero_pd();
    let one = _mm256_set1_pd(1.0);
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm256_loadu_pd(xs.as_ptr().add(i));
        // c + d*(x - e): sub, mul, add — the scalar sequence, no FMA.
        let t = _mm256_add_pd(cv, _mm256_mul_pd(dv, _mm256_sub_pd(x, ev)));
        // clamp(0, 1) with f64::clamp semantics: compare-and-select, so
        // NaN and -0.0 behave exactly like the scalar branchy clamp.
        let t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd::<_CMP_LT_OQ>(t, zero));
        let t = _mm256_blendv_pd(t, one, _mm256_cmp_pd::<_CMP_GT_OQ>(t, one));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), t);
        i += 4;
    }
    fill_interp_scalar(c, d, e, &xs[i..], &mut out[i..]);
}

/// # Safety
/// SSE2 is part of the `x86_64` baseline; always safe there.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fill_interp_sse2(c: f64, d: f64, e: f64, xs: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let cv = _mm_set1_pd(c);
    let dv = _mm_set1_pd(d);
    let ev = _mm_set1_pd(e);
    let zero = _mm_setzero_pd();
    let one = _mm_set1_pd(1.0);
    let mut i = 0;
    while i + 2 <= n {
        let x = _mm_loadu_pd(xs.as_ptr().add(i));
        let t = _mm_add_pd(cv, _mm_mul_pd(dv, _mm_sub_pd(x, ev)));
        // Select-by-mask clamp (SSE2 has no blendv): lanes below 0 become
        // +0.0, lanes above 1 become 1.0, everything else passes through.
        let lt = _mm_cmplt_pd(t, zero);
        let t = _mm_andnot_pd(lt, t); // below-zero lanes -> +0.0 bits
        let gt = _mm_cmpgt_pd(t, one);
        let t = _mm_or_pd(_mm_andnot_pd(gt, t), _mm_and_pd(gt, one));
        _mm_storeu_pd(out.as_mut_ptr().add(i), t);
        i += 2;
    }
    fill_interp_scalar(c, d, e, &xs[i..], &mut out[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_and_lanes() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Sse2.lanes(), 2);
        assert_eq!(SimdTier::Avx2.lanes(), 4);
        assert!(SimdTier::Scalar < SimdTier::Sse2);
    }

    #[test]
    fn force_tier_is_capped_and_reversible() {
        let auto = detected_tier();
        let eff = force_tier(Some(SimdTier::Avx2));
        assert!(eff <= auto.max(eff)); // capped at the CPU maximum
        assert_eq!(active_tier(), eff);
        let back = force_tier(None);
        assert_eq!(back, auto);
        assert_eq!(active_tier(), auto);
    }

    #[test]
    fn available_tiers_end_at_scalar() {
        let tiers = SimdTier::available();
        assert_eq!(tiers.last(), Some(&SimdTier::Scalar));
        assert!(!tiers.is_empty());
    }

    #[test]
    fn cpu_features_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn fill_interp_all_tiers_match_scalar_bitwise() {
        // Awkward lengths, out-of-range values, a NaN-free mix spanning the
        // clamp boundaries, and exact 0/1 results.
        let xs: Vec<f64> = (0..37).map(|i| -1.0 + 0.11 * i as f64).collect();
        let (c, d, e) = (0.25, 0.7, 0.4);
        let mut want = vec![0.0; xs.len()];
        fill_interp_scalar(c, d, e, &xs, &mut want);
        for tier in SimdTier::available() {
            force_tier(Some(tier));
            let mut got = vec![0.0; xs.len()];
            fill_interp(c, d, e, &xs, &mut got);
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "tier {tier:?} lane {i}");
            }
        }
        force_tier(None);
    }
}
