//! Result tables: the rows/series each figure of the paper reports,
//! emitted as aligned text, Markdown, and CSV.

use std::fmt::Write as _;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "Fig. 10".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes (workload, parameters, expected shape).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "> {n}");
            }
        }
        out
    }

    /// Render as CSV (headers + rows; notes as `#` comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as aligned plain text for the terminal.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Format a duration in milliseconds with sensible precision.
pub fn ms(d: std::time::Duration) -> String {
    let v = d.as_secs_f64() * 1e3;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a ratio/fraction.
pub fn frac(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig. X", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["30".into(), "4".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 30 | 4 |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# a note");
        assert_eq!(lines[1], "a,b");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ms(std::time::Duration::from_millis(250)), "250");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.50");
        assert_eq!(ms(std::time::Duration::from_micros(120)), "0.1200");
    }
}
