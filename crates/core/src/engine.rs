//! The 1-D uncertain-object database: R-tree filtering over interval
//! uncertainty regions, queried through the unified pipeline of
//! [`crate::pipeline`] (paper Fig. 3: filter → verify → refine).
//!
//! This module owns only the *configuration and query surface*: storage is
//! the shared persistent [`IndexedStore`] (objects live in the
//! path-copying R-tree's leaves, with an id map alongside — see
//! [`crate::store`]), so [`UncertainDb::with_inserted`] /
//! [`UncertainDb::with_removed`] produce copy-on-write snapshots in
//! O(log n) instead of rebuilding. The pipeline control flow (strategy
//! dispatch, verification, refinement, statistics) lives in
//! [`crate::pipeline`] and is shared with the 2-D database and the k-NN
//! extension.

use std::time::Instant;

use cpnn_rtree::{Params, Rect};

use crate::distance::DistanceDistribution;
use crate::error::{CoreError, Result};
use crate::object::{ObjectId, UncertainObject};
use crate::pipeline::{self, DistanceModel, Filtered, PipelineConfig, QuerySpec};
use crate::refine::RefinementOrder;
use crate::shard::{Extent, ShardBalance, ShardableModel, ShardedDb};
use crate::store::{CowModel, IndexedStore, StoredObject};

pub use crate::pipeline::{CpnnQuery, CpnnResult, ObjectReport, PnnResult, QueryStats, Strategy};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Cap on distance-histogram resolution (0 = exact folds). Bounds the
    /// subregion count `M`; see `DistanceDistribution::with_max_bins`.
    pub max_distance_bins: usize,
    /// Adaptive-Simpson tolerance for the Basic baseline.
    pub basic_tolerance: f64,
    /// Subregion visiting order during incremental refinement.
    pub refinement_order: RefinementOrder,
    /// R-tree fan-out parameters.
    pub rtree_params: Params,
    /// Add the FL-SR verifier to the chain (an extra lower-bound pass
    /// beyond the paper; see `verifiers::FarLowerSubregion`).
    pub extended_verifiers: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_distance_bins: 64,
            basic_tolerance: 1e-6,
            refinement_order: RefinementOrder::DescendingMass,
            rtree_params: Params::default(),
            extended_verifiers: false,
        }
    }
}

impl EngineConfig {
    /// The pipeline-level slice of this configuration (caching stays at
    /// its disabled default; callers opt in by setting
    /// `PipelineConfig::cache`).
    pub fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            refinement_order: self.refinement_order,
            basic_tolerance: self.basic_tolerance,
            extended_verifiers: self.extended_verifiers,
            ..PipelineConfig::default()
        }
    }
}

/// A 1-D interval is stored under its uncertainty region.
impl StoredObject<1> for UncertainObject {
    fn object_id(&self) -> ObjectId {
        self.id()
    }

    fn bounding_rect(&self) -> Rect<1> {
        let (lo, hi) = self.region();
        Rect::interval(lo, hi)
    }
}

/// An in-memory database of 1-D uncertain objects over the shared
/// persistent store (path-copying R-tree + id map — see [`crate::store`]).
/// `Clone` is O(1) and shares all structure until one handle is updated.
#[derive(Debug, Clone)]
pub struct UncertainDb {
    store: IndexedStore<UncertainObject, 1>,
    config: EngineConfig,
}

impl DistanceModel for UncertainDb {
    type Query = f64;

    fn total_objects(&self) -> usize {
        self.store.len()
    }

    fn check_query(&self, q: &f64) -> Result<()> {
        if !q.is_finite() {
            return Err(CoreError::InvalidQueryPoint(*q));
        }
        Ok(())
    }

    fn filter(&self, q: &f64, k: usize) -> Result<Filtered> {
        let start = Instant::now();
        let (cands, _) = self.store.candidates_k(&[*q], k.max(1));
        let filter_time = start.elapsed();
        let mut items = Vec::with_capacity(cands.len());
        for c in cands {
            let o = c.item;
            let dist = DistanceDistribution::from_pdf(o.pdf(), *q)?
                .with_max_bins(self.config.max_distance_bins)?;
            items.push((o.id(), dist));
        }
        Ok(Filtered { items, filter_time })
    }

    fn quantize_query(&self, q: &f64, quantum: f64) -> f64 {
        crate::cache::quantize_coord(*q, quantum)
    }

    fn cache_key(&self, q: &f64) -> Option<u128> {
        Some(crate::cache::point_key_1d(*q))
    }

    fn query_coords(&self, q: &f64) -> Option<Vec<f64>> {
        Some(vec![*q])
    }
}

/// Copy-on-write successors via the persistent store: O(log n) per
/// update, never a rebuild.
impl CowModel for UncertainDb {
    type Object = UncertainObject;

    fn object_id(object: &UncertainObject) -> ObjectId {
        object.id()
    }

    fn object_extent(object: &UncertainObject) -> Extent {
        let (lo, hi) = object.region();
        Extent::new(vec![lo], vec![hi])
    }

    fn contains_id(&self, id: ObjectId) -> bool {
        self.store.contains(id)
    }

    fn with_inserted(&self, object: UncertainObject) -> Result<Self> {
        Ok(Self {
            store: self.store.with_inserted(object)?,
            config: self.config,
        })
    }

    fn with_removed(&self, id: ObjectId) -> (Self, Option<UncertainObject>) {
        let (store, removed) = self.store.with_removed(id);
        (
            Self {
                store,
                config: self.config,
            },
            removed,
        )
    }
}

/// One [`UncertainDb`] is one shard: it owns its objects and its own
/// R-tree, so a [`ShardedDb`] of these partitions the index along with the
/// data. The single-shard case is just `shards = 1`.
impl ShardableModel for UncertainDb {
    type Config = EngineConfig;

    fn shard_config(&self) -> EngineConfig {
        self.config
    }

    fn shard_objects(&self) -> Vec<UncertainObject> {
        self.store.objects()
    }

    fn build_shard(objects: Vec<UncertainObject>, config: &EngineConfig) -> Result<Self> {
        Self::with_config(objects, *config)
    }

    fn model_extent(&self) -> Option<Extent> {
        self.store.extent()
    }

    fn pipeline_config(&self) -> PipelineConfig {
        self.config.pipeline()
    }
}

impl UncertainDb {
    /// Build with default configuration. Fails on duplicate object ids.
    pub fn build(objects: Vec<UncertainObject>) -> Result<Self> {
        Self::with_config(objects, EngineConfig::default())
    }

    /// Structural quality counters of the spatial index (node and leaf
    /// counts, leaf occupancy) — index-health diagnostics for sustained
    /// update workloads.
    pub fn index_stats(&self) -> cpnn_rtree::TreeStats {
        self.store.index().stats()
    }

    /// The spatial index's fan-out parameters (for fill-factor reporting).
    pub fn index_params(&self) -> cpnn_rtree::Params {
        self.store.index().params()
    }

    /// Partition `objects` into a domain-sharded database
    /// ([`ShardedDb`]): each shard owns its own R-tree, queries fan out
    /// only to overlapping shards, and updates path-copy only the owning
    /// shard. `shards = 1` is equivalent to an unsharded build.
    pub fn build_sharded(
        objects: Vec<UncertainObject>,
        shards: usize,
    ) -> Result<ShardedDb<UncertainDb>> {
        ShardedDb::build(objects, EngineConfig::default(), shards)
    }

    /// As [`build_sharded`](Self::build_sharded) with an explicit
    /// partitioning scheme (equal-width slabs or equal-count quantiles —
    /// see [`ShardBalance`]).
    pub fn build_sharded_with(
        objects: Vec<UncertainObject>,
        shards: usize,
        balance: ShardBalance,
    ) -> Result<ShardedDb<UncertainDb>> {
        ShardedDb::build_with(objects, EngineConfig::default(), shards, balance)
    }

    /// Build with explicit configuration.
    pub fn with_config(objects: Vec<UncertainObject>, config: EngineConfig) -> Result<Self> {
        Ok(Self {
            store: IndexedStore::build(objects, config.rtree_params)?,
            config,
        })
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Materialize the stored objects (deterministic order; O(n) — the
    /// query and update paths never call this).
    pub fn objects(&self) -> Vec<UncertainObject> {
        self.store.objects()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The underlying persistent store (crate-internal: used by the
    /// range-query module).
    pub(crate) fn store(&self) -> &IndexedStore<UncertainObject, 1> {
        &self.store
    }

    /// Insert a new object in place (path-copies the root-to-leaf path;
    /// other clones of this handle keep the old snapshot). Fails on a
    /// duplicate id.
    pub fn insert(&mut self, object: UncertainObject) -> Result<()> {
        self.store.insert(object)
    }

    /// Remove an object by id in place, returning it if present
    /// (condense-tree deletion, path-copied).
    pub fn remove(&mut self, id: ObjectId) -> Option<UncertainObject> {
        self.store.remove(id)
    }

    /// The extent of all uncertainty regions `[min, max]`, or `None` if
    /// empty.
    pub fn domain(&self) -> Option<(f64, f64)> {
        self.store.mbr().map(|r| (r.min()[0], r.max()[0]))
    }

    /// Execute a C-PNN query with the given strategy (one trip through the
    /// unified pipeline).
    pub fn cpnn(&self, query: &CpnnQuery, strategy: Strategy) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &query.q,
            &QuerySpec::nn(query.threshold, query.tolerance, strategy),
            &self.config.pipeline(),
        )
    }

    /// Plain PNN: exact qualification probabilities for every candidate
    /// (via the subregion decomposition).
    pub fn pnn(&self, q: f64) -> Result<PnnResult> {
        pipeline::pnn(self, &q, 1)
    }

    /// Exact probabilistic k-NN: for every candidate, the probability of
    /// being among the `k` nearest neighbors of `q` (the paper's future-work
    /// query; see [`crate::knn`]). Probabilities sum to `min(k, |C|)`.
    pub fn pknn(&self, q: f64, k: usize) -> Result<PnnResult> {
        pipeline::pnn(self, &q, k)
    }

    /// Constrained probabilistic k-NN (C-PkNN): objects whose probability
    /// of being among the `k` nearest clears the threshold, evaluated with
    /// the RS-k / SR-k verifiers plus incremental exact refinement.
    pub fn cknn(&self, q: f64, k: usize, threshold: f64, tolerance: f64) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &q,
            &QuerySpec::knn(k, threshold, tolerance, Strategy::Verified),
            &self.config.pipeline(),
        )
    }

    /// Evaluate a batch of C-PNN queries, optionally in parallel.
    ///
    /// The database is immutable and shared by reference across
    /// `threads` worker threads (see [`crate::batch::BatchExecutor`]);
    /// results come back in input order. `threads = 0` or `1` runs
    /// sequentially. Errors surface per query position.
    pub fn cpnn_batch(
        &self,
        queries: &[CpnnQuery],
        strategy: Strategy,
        threads: usize,
    ) -> Vec<Result<CpnnResult>> {
        crate::batch::BatchExecutor::new(threads.max(1))
            .run_cpnn(self, queries, strategy, &self.config.pipeline())
            .results
    }

    /// Minimum query (paper Sec. I): which object has the minimum value? A
    /// PNN with the query point left of every region.
    pub fn pnn_min(&self) -> Result<PnnResult> {
        let (lo, _) = self.domain().unwrap_or((0.0, 0.0));
        self.pnn(lo - 1.0)
    }

    /// Maximum query: which object has the maximum value? A PNN with the
    /// query point right of every region.
    pub fn pnn_max(&self) -> Result<PnnResult> {
        let (_, hi) = self.domain().unwrap_or((0.0, 0.0));
        self.pnn(hi + 1.0)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_scenario, fig7_scenario};

    fn fig7_db() -> UncertainDb {
        let (_, objects) = fig7_scenario();
        UncertainDb::build(objects).unwrap()
    }

    #[test]
    fn duplicate_ids_rejected() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(1), 0.0, 1.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 2.0, 3.0).unwrap(),
        ];
        assert!(matches!(
            UncertainDb::build(objects),
            Err(CoreError::DuplicateObjectId(1))
        ));
    }

    #[test]
    fn all_strategies_agree_on_answers() {
        let db = fig7_db();
        for p in [0.05, 0.1, 0.3, 0.45, 0.5, 0.7, 0.9] {
            let query = CpnnQuery::new(0.0, p, 0.0);
            let basic = db.cpnn(&query, Strategy::Basic).unwrap();
            let refine = db.cpnn(&query, Strategy::RefineOnly).unwrap();
            let vr = db.cpnn(&query, Strategy::Verified).unwrap();
            assert_eq!(basic.answers, refine.answers, "P = {p}");
            assert_eq!(basic.answers, vr.answers, "P = {p}");
        }
    }

    #[test]
    fn monte_carlo_agrees_away_from_threshold() {
        let db = fig7_db();
        // Thresholds far from the exact probabilities {.464, .485, .051}.
        for p in [0.2, 0.7] {
            let query = CpnnQuery::new(0.0, p, 0.0);
            let exact = db.cpnn(&query, Strategy::Basic).unwrap();
            let mc = db
                .cpnn(
                    &query,
                    Strategy::MonteCarlo {
                        worlds: 20_000,
                        seed: 99,
                    },
                )
                .unwrap();
            assert_eq!(exact.answers, mc.answers, "P = {p}");
        }
    }

    #[test]
    fn verified_strategy_reports_stage_progress() {
        let db = fig7_db();
        let query = CpnnQuery::new(0.0, 0.45, 0.0);
        let res = db.cpnn(&query, Strategy::Verified).unwrap();
        assert_eq!(res.stats.stages.len(), 3);
        assert!(!res.stats.resolved_by_verification);
        assert_eq!(res.stats.refined_objects, 2);
        // Exact probabilities: .464 and .485 ≥ .45 → two answers.
        assert_eq!(res.answers.len(), 2);
    }

    #[test]
    fn verification_alone_resolves_high_thresholds() {
        let db = fig7_db();
        let query = CpnnQuery::new(0.0, 0.6, 0.0);
        let res = db.cpnn(&query, Strategy::Verified).unwrap();
        assert!(res.stats.resolved_by_verification);
        assert_eq!(res.stats.refined_objects, 0);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn pnn_returns_descending_probabilities_summing_to_one() {
        let db = fig7_db();
        let res = db.pnn(0.0).unwrap();
        let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in res.probabilities.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(res.probabilities[0].0, ObjectId(2)); // X2 = .485
    }

    #[test]
    fn fig2_style_scenario_has_sensible_shape() {
        let (objects, q) = fig2_scenario();
        let db = UncertainDb::build(objects).unwrap();
        let res = db.pnn(q).unwrap();
        let by_id = |id: u64| {
            res.probabilities
                .iter()
                .find(|(o, _)| o.0 == id)
                .map(|(_, p)| *p)
                .unwrap_or(0.0)
        };
        // Paper Fig. 2: B = 41%, D = 29%, A = 20%, C = 10%. Our analytic
        // geometry lands at (41.0, 28.9, 18.9, 11.3)%.
        assert!((by_id(1) - 0.41).abs() < 0.01, "B = {}", by_id(1));
        assert!((by_id(3) - 0.29).abs() < 0.01, "D = {}", by_id(3));
        assert!((by_id(0) - 0.20).abs() < 0.02, "A = {}", by_id(0));
        assert!((by_id(2) - 0.10).abs() < 0.02, "C = {}", by_id(2));
        let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_and_max_queries_are_pnn_special_cases() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 0.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap(),
            UncertainObject::uniform(ObjectId(2), 10.0, 11.0).unwrap(),
        ];
        let db = UncertainDb::build(objects).unwrap();
        let min = db.pnn_min().unwrap();
        // Object 2 can never be the minimum.
        assert!(min.probabilities.iter().all(|(id, _)| id.0 != 2));
        assert_eq!(min.probabilities[0].0, ObjectId(0));
        let max = db.pnn_max().unwrap();
        assert_eq!(max.probabilities[0].0, ObjectId(2));
        assert!((max.probabilities[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pknn_sums_to_k_and_k1_matches_pnn() {
        let db = fig7_db();
        let p1 = db.pknn(0.0, 1).unwrap();
        let pnn = db.pnn(0.0).unwrap();
        for ((a, pa), (b, pb)) in p1.probabilities.iter().zip(&pnn.probabilities) {
            assert_eq!(a, b);
            assert!((pa - pb).abs() < 1e-9);
        }
        let p2 = db.pknn(0.0, 2).unwrap();
        let total: f64 = p2.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 2.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn cknn_matches_exact_thresholding() {
        let db = fig7_db();
        let exact = db.pknn(0.0, 2).unwrap();
        for threshold in [0.4, 0.7, 0.95] {
            let res = db.cknn(0.0, 2, threshold, 0.0).unwrap();
            let mut want: Vec<ObjectId> = exact
                .probabilities
                .iter()
                .filter(|(_, p)| *p >= threshold)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(res.answers, want, "P = {threshold}");
        }
    }

    #[test]
    fn cknn_keeps_objects_the_1nn_filter_would_prune() {
        // X2's near point (4) exceeds fmin_1 (= 2), so it is not a 1-NN
        // candidate — but it is a 2-NN candidate.
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 1.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 4.0, 6.0).unwrap(),
        ];
        let db = UncertainDb::build(objects).unwrap();
        let p1 = db.pknn(0.0, 1).unwrap();
        assert_eq!(p1.probabilities.len(), 1);
        let p2 = db.pknn(0.0, 2).unwrap();
        assert_eq!(p2.probabilities.len(), 2);
        for (_, p) in &p2.probabilities {
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tolerance_widens_the_answer_set_monotonically() {
        let db = fig7_db();
        let strict = db
            .cpnn(&CpnnQuery::new(0.0, 0.47, 0.0), Strategy::Verified)
            .unwrap();
        let loose = db
            .cpnn(&CpnnQuery::new(0.0, 0.47, 0.25), Strategy::Verified)
            .unwrap();
        for id in &strict.answers {
            assert!(loose.answers.contains(id));
        }
    }

    #[test]
    fn insert_and_remove_keep_queries_consistent() {
        let (_, objects) = fig7_scenario();
        let mut db = UncertainDb::build(objects.clone()).unwrap();
        // Insert a new dominating object right next to q = 0.
        db.insert(UncertainObject::uniform(ObjectId(99), 0.1, 0.2).unwrap())
            .unwrap();
        assert_eq!(db.len(), 4);
        let res = db.pnn(0.0).unwrap();
        assert_eq!(res.probabilities[0].0, ObjectId(99));
        assert!((res.probabilities[0].1 - 1.0).abs() < 1e-9);
        // Remove it again: results must match a fresh build.
        let removed = db.remove(ObjectId(99)).unwrap();
        assert_eq!(removed.id(), ObjectId(99));
        let fresh = UncertainDb::build(objects).unwrap();
        let a = db.pnn(0.0).unwrap();
        let b = fresh.pnn(0.0).unwrap();
        assert_eq!(a.probabilities.len(), b.probabilities.len());
        for ((ida, pa), (idb, pb)) in a.probabilities.iter().zip(&b.probabilities) {
            assert_eq!(ida, idb);
            assert!((pa - pb).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_backfills_swapped_index() {
        // Removing a middle object must re-key the moved last object, or
        // later queries would resolve the wrong index.
        let objects: Vec<UncertainObject> = (0..6)
            .map(|i| {
                UncertainObject::uniform(ObjectId(i), i as f64 * 10.0, i as f64 * 10.0 + 1.0)
                    .unwrap()
            })
            .collect();
        let mut db = UncertainDb::build(objects).unwrap();
        assert!(db.remove(ObjectId(2)).is_some());
        assert!(db.remove(ObjectId(0)).is_some());
        assert_eq!(db.len(), 4);
        assert!(db.remove(ObjectId(2)).is_none());
        // Each survivor is still individually findable as certain NN.
        for id in [1u64, 3, 4, 5] {
            let q = id as f64 * 10.0 + 0.5;
            let res = db.pnn(q).unwrap();
            assert_eq!(res.probabilities[0].0, ObjectId(id), "query at {q}");
        }
    }

    #[test]
    fn insert_duplicate_id_rejected() {
        let (_, objects) = fig7_scenario();
        let mut db = UncertainDb::build(objects).unwrap();
        let dup = UncertainObject::uniform(ObjectId(1), 0.0, 1.0).unwrap();
        assert!(matches!(
            db.insert(dup),
            Err(CoreError::DuplicateObjectId(1))
        ));
    }

    #[test]
    fn batch_matches_sequential_and_is_order_preserving() {
        let db = fig7_db();
        let queries: Vec<CpnnQuery> = (0..12)
            .map(|i| CpnnQuery::new(i as f64 * 0.5, 0.3, 0.01))
            .collect();
        let seq = db.cpnn_batch(&queries, Strategy::Verified, 1);
        let par = db.cpnn_batch(&queries, Strategy::Verified, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.as_ref().unwrap().answers, p.as_ref().unwrap().answers);
        }
    }

    #[test]
    fn batch_reports_per_query_errors() {
        let db = fig7_db();
        let queries = vec![
            CpnnQuery::new(0.0, 0.3, 0.01),
            CpnnQuery::new(f64::NAN, 0.3, 0.01),
        ];
        let res = db.cpnn_batch(&queries, Strategy::Verified, 2);
        assert!(res[0].is_ok());
        assert!(res[1].is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = fig7_db();
        assert!(db
            .cpnn(&CpnnQuery::new(f64::NAN, 0.3, 0.0), Strategy::Verified)
            .is_err());
        assert!(db
            .cpnn(&CpnnQuery::new(0.0, 0.0, 0.0), Strategy::Verified)
            .is_err());
        assert!(db
            .cpnn(&CpnnQuery::new(0.0, 0.3, 2.0), Strategy::Verified)
            .is_err());
        assert!(db.pnn(f64::INFINITY).is_err());
    }

    #[test]
    fn empty_database_yields_empty_results() {
        let db = UncertainDb::build(Vec::new()).unwrap();
        let res = db
            .cpnn(&CpnnQuery::new(0.0, 0.3, 0.0), Strategy::Verified)
            .unwrap();
        assert!(res.answers.is_empty());
        assert!(res.reports.is_empty());
        assert_eq!(res.stats.candidates, 0);
    }
}
