//! Minimal `--flag value` argument parsing (no external crates).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A usage / parse error with a human message.
#[derive(Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parsed arguments: positionals in order plus `--key value` pairs.
#[derive(Debug, Default)]
pub struct ArgBag {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
}

impl ArgBag {
    /// Parse raw argv (after the subcommand).
    pub fn parse(args: &[String]) -> Result<Self, UsageError> {
        let mut bag = ArgBag::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| UsageError(format!("--{key} requires a value")))?;
                if bag.flags.insert(key.to_string(), value.clone()).is_some() {
                    return Err(UsageError(format!("--{key} given twice")));
                }
            } else {
                bag.positionals.push(a.clone());
            }
        }
        Ok(bag)
    }

    /// Consume the next positional argument.
    pub fn positional<T: FromStr>(&mut self, what: &str) -> Result<T, UsageError>
    where
        T::Err: fmt::Display,
    {
        if self.positionals.is_empty() {
            return Err(UsageError(format!("missing {what}")));
        }
        let raw = self.positionals.remove(0);
        raw.parse()
            .map_err(|e| UsageError(format!("invalid {what} `{raw}`: {e}")))
    }

    /// Look at the next positional without consuming it (e.g. to special-case
    /// a `help` keyword where a file path is normally expected).
    pub fn peek_positional(&self) -> Option<&str> {
        self.positionals.first().map(String::as_str)
    }

    /// Consume a required `--key`.
    pub fn required<T: FromStr>(&mut self, key: &str) -> Result<T, UsageError>
    where
        T::Err: fmt::Display,
    {
        self.optional(key)?
            .ok_or_else(|| UsageError(format!("missing required --{key}")))
    }

    /// Consume an optional `--key`.
    pub fn optional<T: FromStr>(&mut self, key: &str) -> Result<Option<T>, UsageError>
    where
        T::Err: fmt::Display,
    {
        match self.flags.remove(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| UsageError(format!("invalid --{key} `{raw}`: {e}"))),
        }
    }

    /// Error on any leftover arguments (catches typos).
    pub fn finish(&mut self) -> Result<(), UsageError> {
        if let Some(p) = self.positionals.first() {
            return Err(UsageError(format!("unexpected argument `{p}`")));
        }
        if let Some(k) = self.flags.keys().next() {
            return Err(UsageError(format!("unexpected flag --{k}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let mut bag = ArgBag::parse(&strs(&["data.cpnn", "--q", "42.5", "--top", "3"])).unwrap();
        let file: String = bag.positional("file").unwrap();
        assert_eq!(file, "data.cpnn");
        let q: f64 = bag.required("q").unwrap();
        assert_eq!(q, 42.5);
        let top: Option<usize> = bag.optional("top").unwrap();
        assert_eq!(top, Some(3));
        bag.finish().unwrap();
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(ArgBag::parse(&strs(&["--q"])).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(ArgBag::parse(&strs(&["--q", "1", "--q", "2"])).is_err());
    }

    #[test]
    fn leftover_arguments_are_caught() {
        let mut bag = ArgBag::parse(&strs(&["x", "--oops", "1"])).unwrap();
        let _: String = bag.positional("file").unwrap();
        assert!(bag.finish().is_err());
    }

    #[test]
    fn invalid_number_reports_key() {
        let mut bag = ArgBag::parse(&strs(&["--q", "abc"])).unwrap();
        let err = bag.required::<f64>("q").unwrap_err();
        assert!(err.0.contains("--q"));
    }

    #[test]
    fn missing_required_flag() {
        let mut bag = ArgBag::parse(&[]).unwrap();
        assert!(bag.required::<f64>("p").is_err());
    }
}
