//! Verification-kernel micro-benchmark — beyond the paper: the column-major
//! kernels of `cpnn_core::verifiers::kernels` against the retained legacy
//! path (`cpnn_core::verifiers::reference` + the naive scalar integrands),
//! across a |C| × M grid.
//!
//! Both paths run the *same* verify → refine pipeline (RS, L-SR, U-SR, then
//! incremental refinement at an ambiguous threshold P = 1/|C| so refinement
//! actually integrates); their verdicts and bounds are bit-identical
//! (`tests/proptest_kernels.rs`), so whatever separates the timings is pure
//! implementation: SoA column scans and allocation-free scratch reuse vs.
//! row-major strided access with per-subregion allocations.
//!
//! M is swept independently of |C| by duplicating near endpoints: with
//! group size g, only ⌈|C|/g⌉ distinct near points (hence proportionally
//! fewer left subregions) exist at the same candidate count.

use std::time::{Duration, Instant};

use cpnn_core::classify::Classifier;
use cpnn_core::exact::subregion_qualification;
use cpnn_core::framework::{default_verifiers, run_verification_into};
use cpnn_core::refine::incremental_refine_with;
use cpnn_core::verifiers::reference::reference_verifiers;
use cpnn_core::verifiers::simd::{active_tier, force_tier, SimdTier};
use cpnn_core::verifiers::{kernels, VerificationState, Verifier};
use cpnn_core::{CandidateSet, ObjectId, RefinementOrder, SubregionTable, UncertainObject};

use crate::report::{ms, Table};

/// `c` mutually overlapping uniforms; near points repeat in groups of `g`,
/// shrinking M (the subregion count) without changing |C|.
fn candidate_set(c: usize, g: usize) -> CandidateSet {
    let objects: Vec<UncertainObject> = (0..c)
        .map(|i| {
            let lo = 1.0 + 0.05 * (i / g) as f64;
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + 50.0).expect("valid region")
        })
        .collect();
    CandidateSet::build(&objects, 0.0, 0).expect("valid candidate set")
}

/// One full verify → refine pass; `reps` repetitions, best (minimum) time.
/// The state is reused across reps — exactly how the pipeline's
/// `QueryScratch` runs it — so the kernel path is measured at its
/// allocation-free steady state and the legacy path at its best case too.
fn time_pass(
    table: &SubregionTable,
    classifier: &Classifier,
    chain: &[Box<dyn Verifier>],
    state: &mut VerificationState,
    reps: usize,
    mut qual: impl FnMut(usize, usize, &mut kernels::KernelScratch) -> f64,
) -> Duration {
    let mut stages = Vec::new();
    let mut best = Duration::MAX;
    // One untimed warm-up grows every buffer to its high-water mark.
    for rep in 0..=reps {
        state.reset(table);
        stages.clear();
        let start = Instant::now();
        run_verification_into(table, classifier, chain, state, &mut stages);
        incremental_refine_with(
            table,
            classifier,
            state,
            RefinementOrder::DescendingMass,
            &mut qual,
        );
        let elapsed = start.elapsed();
        if rep > 0 {
            best = best.min(elapsed);
        }
    }
    best
}

/// Run the kernel-vs-legacy grid. Columns: |C|, M, the table build-only
/// time (the cache-blocked `SubregionTable::build`), the legacy pass, the
/// kernel pass at forced-scalar dispatch, the kernel pass at the host's
/// best SIMD tier, the simd-over-scalar speedup, and the dispatched tier.
pub fn run(quick: bool) -> Table {
    let sizes: Vec<usize> = if quick {
        vec![16, 64, 128]
    } else {
        vec![16, 64, 128, 256]
    };
    let groups = [1usize, 4];
    let reps = if quick { 15 } else { 40 };
    let mut table = Table::new(
        "Verify",
        "verification-kernel vs legacy-path time per query (build / verify + refine)",
        &[
            "|C|",
            "M",
            "build (ms)",
            "legacy (ms)",
            "kernel scalar (ms)",
            "kernel simd (ms)",
            "simd speedup",
            "tier",
        ],
    );
    table.note(format!(
        "best of {reps} passes; chain RS, L-SR, U-SR + incremental refinement at P = 1/|C|, Δ = 0.01; \
         legacy = verifiers::reference + naive integrand, kernel = verifiers::kernels; \
         build = cache-blocked SubregionTable::build only; scalar = CPNN_SIMD=off dispatch, \
         simd = auto dispatch; bit-identical outputs at every tier (tests/proptest_kernels.rs)"
    ));
    for &c in &sizes {
        for &g in &groups {
            let cands = candidate_set(c, g);
            // Build-only lane: best-of-reps table construction (untimed
            // first build warms the allocator).
            let sub = SubregionTable::build(&cands);
            let mut build = Duration::MAX;
            for _ in 0..reps {
                let start = Instant::now();
                let t = std::hint::black_box(SubregionTable::build(&cands));
                build = build.min(start.elapsed());
                drop(t);
            }
            let classifier = Classifier::new(1.0 / c as f64, 0.01).expect("valid classifier");
            let mut state = VerificationState::new(&sub);
            let legacy_chain = reference_verifiers();
            let legacy = time_pass(
                &sub,
                &classifier,
                &legacy_chain,
                &mut state,
                reps,
                |i, j, _| subregion_qualification(&sub, i, j),
            );
            let kernel_chain = default_verifiers();
            force_tier(Some(SimdTier::Scalar));
            let scalar = time_pass(
                &sub,
                &classifier,
                &kernel_chain,
                &mut state,
                reps,
                |i, j, s| kernels::nn_qualification(&sub, i, j, s),
            );
            force_tier(None);
            let simd = time_pass(
                &sub,
                &classifier,
                &kernel_chain,
                &mut state,
                reps,
                |i, j, s| kernels::nn_qualification(&sub, i, j, s),
            );
            table.push_row(vec![
                c.to_string(),
                sub.subregion_count().to_string(),
                ms(build),
                ms(legacy),
                ms(scalar),
                ms(simd),
                format!(
                    "{:.2}x",
                    scalar.as_secs_f64() / simd.as_secs_f64().max(1e-12)
                ),
                active_tier().name().to_string(),
            ]);
        }
    }
    table
}
