//! Criterion bench for Fig. 12 / Table III: individual verifier passes on a
//! controlled candidate set (|C| = 128 heavily overlapping objects).

use std::time::Duration;

use cpnn_core::verifiers::{
    LowerSubregion, RightmostSubregion, UpperSubregion, VerificationState, Verifier,
};
use cpnn_core::{CandidateSet, ObjectId, SubregionTable, UncertainObject};
use criterion::{criterion_group, criterion_main, Criterion};

fn controlled_table(c: usize) -> SubregionTable {
    let objects: Vec<UncertainObject> = (0..c)
        .map(|i| {
            let lo = 1.0 + 0.05 * i as f64;
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + 50.0).unwrap()
        })
        .collect();
    let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
    SubregionTable::build(&cands)
}

fn bench(c: &mut Criterion) {
    let table = controlled_table(128);
    let mut group = c.benchmark_group("fig12_verifier_passes");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, verifier) in [
        ("RS", Box::new(RightmostSubregion) as Box<dyn Verifier>),
        ("L-SR", Box::new(LowerSubregion)),
        ("U-SR", Box::new(UpperSubregion)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut state = VerificationState::new(&table);
                verifier.apply(&table, &mut state);
                state
            });
        });
    }
    group.bench_function("exact_evaluation", |b| {
        b.iter(|| cpnn_core::exact::exact_probabilities(&table));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
