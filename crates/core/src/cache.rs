//! Verification-state caching: quantized-query LRU memoization of the
//! expensive, *query-point-determined* half of the pipeline.
//!
//! The paper's verify/refine flow recomputes per-object distance
//! distributions and the dense [`SubregionTable`] from scratch for every
//! query, even though real traffic issues repeated (or, after
//! quantization, identical) query points whose candidate sets and
//! distributions are the same — precomputing query-independent
//! probabilistic structure is how Probabilistic Voronoi Diagrams amortize
//! repeated PNN evaluation. [`VerifyCache`] memoizes exactly the state
//! that depends only on `(query point, k, snapshot)`:
//!
//! * the **filter output** — the candidate set, including every
//!   survivor's distance distribution (the product of phases 1–2,
//!   dominated by pdf folding / 2-D cdf integration);
//! * the **subregion table** — built lazily by the first strategy that
//!   needs one and reused afterwards.
//!
//! Thresholds, tolerances, and strategies are deliberately *not* part of
//! the key: verify/refine re-run on every query, so one cached entry
//! serves every `P`/`Δ`/strategy at that point. The cache therefore never
//! changes any verdict or probability bound — it only skips recomputing
//! inputs that are bit-identical by construction.
//!
//! # Quantization correctness
//!
//! With `quantum == 0` a lookup key is the exact bit pattern of the query
//! point: cached and uncached evaluation are bit-for-bit identical
//! (property-tested in `tests/proptest_cache.rs`). With `quantum = ε > 0`
//! every query point is first **snapped to its grid representative**
//! (each coordinate rounded to the nearest multiple of ε) and then
//! evaluated — on a hit *and* on a miss. Snapping is a pure function of
//! the point, so the answer a query receives is independent of cache
//! state, arrival order, and capacity: it is always the uncached answer
//! *of the snapped point*. The approximation is the snap, never the
//! cache.
//!
//! # Snapshot-version invalidation
//!
//! A cache is only sound against one immutable database. Every execution
//! surface that evaluates against a [`crate::server::Snapshot`] tells its
//! scratch the pinned version ([`crate::QueryScratch::set_snapshot_version`])
//! before evaluating; when the version moves, the cache clears itself, so
//! a copy-on-write update can never serve stale candidate sets or bounds
//! (property-tested under interleaved `insert`/`remove` through
//! [`crate::server::QueryServer`]). As defense in depth for callers
//! driving `cpnn_with` directly, the cache also pins the database's
//! object count on every query ([`VerifyCache::pin_source`]): an
//! in-place `insert`/`remove` on the model, or reusing one scratch
//! across differently-sized databases, invalidates automatically even
//! though no version ever moved. An equal-count swap is the one case the
//! guards cannot see — use a fresh scratch (or bump the version) when
//! substituting objects behind a cached scratch.
//!
//! # Example
//!
//! ```
//! use cpnn_core::cache::CacheConfig;
//! use cpnn_core::{
//!     pipeline, ObjectId, PipelineConfig, QueryScratch, QuerySpec, Strategy, UncertainDb,
//!     UncertainObject,
//! };
//!
//! let db = UncertainDb::build(vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
//! ])
//! .unwrap();
//! let mut cfg = PipelineConfig::default();
//! cfg.cache = CacheConfig::new(128, 0.0);
//! let mut scratch = QueryScratch::new();
//! let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
//!
//! let first = pipeline::cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
//! let second = pipeline::cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
//! assert_eq!(first.answers, second.answers);
//! let stats = scratch.cache_stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::candidate::CandidateSet;
use crate::shard::Extent;
use crate::subregion::SubregionTable;

/// Tuning for a per-thread [`VerifyCache`]. Lives inside
/// [`crate::PipelineConfig`], so every execution surface — one-shot,
/// batch, server, sharded — picks it up without new plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum memoized query points per thread; `0` disables caching
    /// entirely (the default).
    pub capacity: usize,
    /// Quantization grid width ε. `0.0` reuses exact repeats only;
    /// `ε > 0` snaps every query coordinate to the nearest multiple of ε
    /// **before** evaluation, so nearby points share one entry (see the
    /// [module docs](self) for why this never makes answers depend on
    /// cache state).
    pub quantum: f64,
}

impl CacheConfig {
    /// A cache of `capacity` entries with grid width `quantum`.
    ///
    /// ```
    /// use cpnn_core::cache::CacheConfig;
    /// let cfg = CacheConfig::new(256, 0.5);
    /// assert!(cfg.is_enabled());
    /// assert!(!CacheConfig::disabled().is_enabled());
    /// ```
    pub fn new(capacity: usize, quantum: f64) -> Self {
        Self { capacity, quantum }
    }

    /// The no-cache configuration (also the [`Default`]).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            quantum: 0.0,
        }
    }

    /// Does this configuration cache anything at all?
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Cumulative cache counters. Survive [`VerifyCache`] invalidations, so a
/// long-running worker reports its lifetime hit rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to filter and build distributions from scratch.
    pub misses: u64,
    /// Whole-cache clears caused by a snapshot-version change.
    pub invalidations: u64,
    /// Entries dropped by *incremental* (region-scoped) invalidation —
    /// entries whose candidate horizon intersected an updated region (see
    /// [`VerifyCache::advance_version`]). Entries that survive such a
    /// pass keep serving hits across snapshot versions.
    pub region_evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits per lookup in `[0, 1]` (`0` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            return 0.0;
        }
        self.hits as f64 / n as f64
    }

    /// Fold another counter set into this one (batch workers aggregate
    /// their per-thread caches this way).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.region_evictions += other.region_evictions;
    }
}

/// Snap one coordinate to the nearest multiple of `quantum`
/// (identity when `quantum` is zero, negative, or not finite).
///
/// ```
/// use cpnn_core::cache::quantize_coord;
/// assert_eq!(quantize_coord(4203.7, 10.0), 4200.0);
/// assert_eq!(quantize_coord(4203.7, 0.0), 4203.7);
/// ```
pub fn quantize_coord(c: f64, quantum: f64) -> f64 {
    if quantum > 0.0 && quantum.is_finite() && c.is_finite() {
        (c / quantum).round() * quantum
    } else {
        c
    }
}

/// Bit-exact key of a 1-D query point (already snapped).
pub fn point_key_1d(q: f64) -> u128 {
    q.to_bits() as u128
}

/// Bit-exact key of a 2-D query point (already snapped).
pub fn point_key_2d(q: [f64; 2]) -> u128 {
    ((q[0].to_bits() as u128) << 64) | q[1].to_bits() as u128
}

/// One memoized verification state: the candidate set (filter output +
/// per-candidate distance distributions) and, once some strategy built
/// it, the subregion table. Both sit behind [`Arc`]s so a hit costs two
/// refcount bumps, not a copy.
///
/// For **incremental invalidation** the entry also remembers the (snapped)
/// query point it was computed at and its *candidate horizon* — the
/// `k`-th smallest far point the filter pruned against. An update whose
/// region lies entirely beyond the horizon provably cannot change this
/// entry's candidate set (its near distance exceeds the horizon, so it is
/// not a candidate; its far distance exceeds the `k`-th far, so it cannot
/// tighten the horizon either), so the entry survives the snapshot swap.
#[derive(Debug, Clone)]
pub struct CachedQuery {
    cands: Arc<CandidateSet>,
    table: Option<Arc<SubregionTable>>,
    /// Coordinates of the (snapped) query point, `None` when the model
    /// cannot expose them — such entries drop on any region invalidation.
    coords: Option<Box<[f64]>>,
    /// The filter's pruning horizon at this point (`INFINITY` when the
    /// candidate set covered the whole database, i.e. `|C| < k`).
    horizon: f64,
}

impl CachedQuery {
    /// An entry holding filter output only (the table attaches later).
    /// Without query coordinates the entry is dropped by *any* region
    /// invalidation; prefer [`for_query`](Self::for_query).
    pub fn new(cands: Arc<CandidateSet>) -> Self {
        Self {
            cands,
            table: None,
            coords: None,
            horizon: f64::INFINITY,
        }
    }

    /// An entry that can survive incremental invalidation: remembers the
    /// snapped query coordinates and derives the candidate horizon from
    /// the candidate set (`INFINITY` when fewer than `k` candidates exist
    /// — then the whole database was in range and any update may matter).
    pub fn for_query(cands: Arc<CandidateSet>, coords: Option<Vec<f64>>, k: usize) -> Self {
        let horizon = if cands.len() < k.max(1) {
            f64::INFINITY
        } else {
            cands.horizon()
        };
        Self {
            cands,
            table: None,
            coords: coords.map(Vec::into_boxed_slice),
            horizon,
        }
    }

    /// The memoized candidate set.
    pub fn candidates(&self) -> &Arc<CandidateSet> {
        &self.cands
    }

    /// The memoized subregion table, if one was ever built at this point.
    pub fn table(&self) -> Option<&Arc<SubregionTable>> {
        self.table.as_ref()
    }

    /// Can this entry survive an update confined to `region`? True only
    /// when the region's minimum distance from the entry's query point
    /// strictly exceeds the candidate horizon (see the type docs for the
    /// soundness argument). Conservative on missing/mismatched
    /// coordinates: the entry does not survive.
    fn survives(&self, region: &Extent) -> bool {
        let Some(coords) = self.coords.as_deref() else {
            return false;
        };
        if coords.len() != region.dims() {
            return false;
        }
        region.mindist(&coords) > self.horizon
    }
}

/// Key of one memoized query: the snapped point's bit pattern plus the
/// neighbor count `k` (a `k = 1` candidate set prunes against a tighter
/// horizon than a `k = 3` one, so they cannot share state). The snapshot
/// version is *not* in the key — a version change clears the whole cache
/// instead, so stale entries cannot linger in the LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    point: u128,
    k: usize,
}

/// A per-thread LRU memoizing filter output, distance distributions, and
/// subregion tables by quantized query point. See the [module
/// docs](self) for the key design and the correctness argument; the
/// high-level entry points are [`crate::QueryScratch::with_cache`] and
/// [`crate::PipelineConfig`]'s `cache` field.
///
/// ```
/// use cpnn_core::cache::{CacheConfig, CachedQuery, VerifyCache};
/// use cpnn_core::{CandidateSet, ObjectId, UncertainObject};
/// use std::sync::Arc;
///
/// let objects = vec![UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap()];
/// let cands = Arc::new(CandidateSet::build(&objects, 0.0, 0).unwrap());
/// let mut cache = VerifyCache::new(CacheConfig::new(2, 0.0));
///
/// let point = cpnn_core::cache::point_key_1d(0.0);
/// assert!(cache.lookup(point, 1).is_none()); // miss
/// cache.insert(point, 1, CachedQuery::new(cands));
/// assert!(cache.lookup(point, 1).is_some()); // hit
///
/// // A snapshot-version change invalidates everything.
/// cache.set_version(1);
/// assert!(cache.lookup(point, 1).is_none());
/// assert_eq!(cache.stats().invalidations, 1);
/// ```
#[derive(Debug)]
pub struct VerifyCache {
    config: CacheConfig,
    /// The snapshot version the cached entries were computed against.
    version: u64,
    /// Object count of the database the entries were computed against
    /// (`None` until the first query) — a defense-in-depth guard for the
    /// public `cpnn_with` seam: an in-place `insert`/`remove` on the
    /// model, or reusing one scratch across differently-sized databases,
    /// changes the count and invalidates even though no snapshot version
    /// ever moved. Equal-count mutations still need
    /// [`set_version`](Self::set_version) (or a fresh scratch) — the
    /// serving path always provides exactly that.
    source_objects: Option<usize>,
    /// Entry → (last-use tick, state). Eviction scans for the minimum
    /// tick — O(capacity), fine for the few-hundred-entry caches this is
    /// built for and free of unsafe linked-list bookkeeping.
    map: HashMap<Key, (u64, CachedQuery)>,
    tick: u64,
    stats: CacheStats,
}

impl VerifyCache {
    /// A fresh cache (snapshot version 0).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            version: 0,
            source_objects: None,
            map: HashMap::with_capacity(config.capacity.min(1024)),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The quantization grid width.
    pub fn quantum(&self) -> f64 {
        self.config.quantum
    }

    /// The snapshot version current entries belong to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of memoized query points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters (not reset by invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Pin the snapshot version. Moving to a *different* version drops
    /// every entry — the memoized candidate sets were computed against a
    /// database that no longer serves — and counts one invalidation (if
    /// anything was dropped). Idempotent for the current version.
    pub fn set_version(&mut self, version: u64) {
        if version == self.version {
            return;
        }
        self.version = version;
        if !self.map.is_empty() {
            self.map.clear();
            self.stats.invalidations += 1;
        }
    }

    /// Pin the snapshot version **incrementally**: instead of clearing,
    /// drop only the entries whose cached candidate horizon intersects one
    /// of the `regions` the intervening updates touched (see
    /// [`CachedQuery::for_query`] for why surviving entries are provably
    /// still exact). Entries without query coordinates are dropped
    /// conservatively. Idempotent for the current version; moving
    /// *backwards* falls back to a full clear (the regions walked forward
    /// do not describe the reverse trip).
    pub fn advance_version(&mut self, version: u64, regions: &[Extent]) {
        if version == self.version {
            return;
        }
        if version < self.version {
            self.set_version(version);
            return;
        }
        self.version = version;
        // The source-object count moves with every applied update; the
        // version move is the sanctioned invalidation here, so re-arm the
        // count guard instead of letting it clear the survivors.
        self.source_objects = None;
        let before = self.map.len();
        self.map
            .retain(|_, (_, entry)| regions.iter().all(|r| entry.survives(r)));
        self.stats.region_evictions += (before - self.map.len()) as u64;
    }

    /// Drop every entry without touching counters or version.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Pin the object count of the database about to be queried,
    /// invalidating every entry if it moved since the last query (see
    /// the `source_objects` field docs — the guard that catches in-place
    /// mutation and cross-database scratch reuse without a version
    /// change). The pipeline calls this on every cached query.
    pub fn pin_source(&mut self, total_objects: usize) {
        if self.source_objects == Some(total_objects) {
            return;
        }
        if self.source_objects.is_some() && !self.map.is_empty() {
            self.map.clear();
            self.stats.invalidations += 1;
        }
        self.source_objects = Some(total_objects);
    }

    /// Look up the memoized state for a snapped point and neighbor count,
    /// counting a hit or miss.
    pub fn lookup(&mut self, point: u128, k: usize) -> Option<CachedQuery> {
        self.tick += 1;
        match self.map.get_mut(&Key { point, k }) {
            Some((tick, entry)) => {
                *tick = self.tick;
                self.stats.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoize freshly computed state, evicting the least-recently-used
    /// entry if the cache is full. No-op at capacity 0.
    pub fn insert(&mut self, point: u128, k: usize, entry: CachedQuery) {
        if self.config.capacity == 0 {
            return;
        }
        let key = Key { point, k };
        if self.map.len() >= self.config.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, entry));
    }

    /// Attach a just-built subregion table to an existing entry (the
    /// table is built lazily by the first strategy that needs one).
    /// Ignored if the entry was evicted in the meantime or already has a
    /// table.
    pub fn attach_table(&mut self, point: u128, k: usize, table: Arc<SubregionTable>) {
        if let Some((_, entry)) = self.map.get_mut(&Key { point, k }) {
            if entry.table.is_none() {
                entry.table = Some(table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectId, UncertainObject};

    fn entry(q: f64) -> CachedQuery {
        let objects = vec![UncertainObject::uniform(ObjectId(7), 1.0, 3.0).unwrap()];
        CachedQuery::new(Arc::new(CandidateSet::build(&objects, q, 0).unwrap()))
    }

    #[test]
    fn quantize_snaps_to_grid_and_zero_is_identity() {
        assert_eq!(quantize_coord(4203.7, 10.0), 4200.0);
        assert_eq!(quantize_coord(-4203.7, 10.0), -4200.0);
        assert_eq!(quantize_coord(4205.0, 10.0), 4210.0); // ties round away
        assert_eq!(quantize_coord(1.23456, 0.0), 1.23456);
        assert_eq!(quantize_coord(1.23456, -1.0), 1.23456);
        assert!(quantize_coord(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn point_keys_are_bit_exact_and_dimension_distinct() {
        assert_eq!(point_key_1d(1.5), point_key_1d(1.5));
        assert_ne!(point_key_1d(1.5), point_key_1d(1.5 + f64::EPSILON));
        assert_ne!(point_key_2d([1.0, 2.0]), point_key_2d([2.0, 1.0]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = VerifyCache::new(CacheConfig::new(2, 0.0));
        cache.insert(1, 1, entry(0.0));
        cache.insert(2, 1, entry(0.0));
        // Touch 1, then insert 3: 2 is the LRU victim.
        assert!(cache.lookup(1, 1).is_some());
        cache.insert(3, 1, entry(0.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, 1).is_some());
        assert!(cache.lookup(2, 1).is_none());
        assert!(cache.lookup(3, 1).is_some());
    }

    #[test]
    fn k_is_part_of_the_key() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.insert(1, 1, entry(0.0));
        assert!(cache.lookup(1, 2).is_none());
        assert!(cache.lookup(1, 1).is_some());
    }

    #[test]
    fn version_change_clears_but_counters_survive() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.insert(1, 1, entry(0.0));
        assert!(cache.lookup(1, 1).is_some());
        cache.set_version(1);
        assert!(cache.is_empty());
        assert!(cache.lookup(1, 1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 1));
        // Same version again: no further invalidation.
        cache.set_version(1);
        assert_eq!(cache.stats().invalidations, 1);
        // Clearing an empty cache on a version move counts nothing.
        cache.set_version(2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn attach_table_fills_once_and_tolerates_eviction() {
        let mut cache = VerifyCache::new(CacheConfig::new(1, 0.0));
        cache.insert(1, 1, entry(0.0));
        let e = cache.lookup(1, 1).unwrap();
        assert!(e.table().is_none());
        let table = Arc::new(SubregionTable::build(e.candidates()));
        cache.attach_table(1, 1, Arc::clone(&table));
        let e = cache.lookup(1, 1).unwrap();
        assert!(e.table().is_some());
        // A second attach does not replace the first.
        cache.attach_table(1, 1, Arc::new(SubregionTable::build(e.candidates())));
        let again = cache.lookup(1, 1).unwrap();
        assert!(Arc::ptr_eq(again.table().unwrap(), &table));
        // Attaching to an evicted key is a no-op.
        cache.insert(2, 1, entry(0.0));
        cache.attach_table(1, 1, table);
        assert!(cache.lookup(1, 1).is_none());
    }

    #[test]
    fn pin_source_invalidates_on_count_change_only() {
        let mut cache = VerifyCache::new(CacheConfig::new(4, 0.0));
        cache.pin_source(10);
        cache.insert(1, 1, entry(0.0));
        // Same count: entries survive.
        cache.pin_source(10);
        assert!(cache.lookup(1, 1).is_some());
        // Count moved (in-place insert / different database): clear.
        cache.pin_source(11);
        assert!(cache.lookup(1, 1).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn capacity_zero_never_stores() {
        let mut cache = VerifyCache::new(CacheConfig::disabled());
        cache.insert(1, 1, entry(0.0));
        assert!(cache.is_empty());
        assert!(cache.lookup(1, 1).is_none());
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(a.hit_rate(), 0.75);
        a.accumulate(&CacheStats {
            hits: 1,
            misses: 3,
            invalidations: 2,
            region_evictions: 5,
        });
        assert_eq!((a.hits, a.misses, a.invalidations), (4, 4, 2));
        assert_eq!(a.region_evictions, 5);
        assert_eq!(a.hit_rate(), 0.5);
    }

    #[test]
    fn advance_version_drops_only_intersecting_entries() {
        let objects = vec![UncertainObject::uniform(ObjectId(7), 1.0, 3.0).unwrap()];
        let at = |q: f64| {
            CachedQuery::for_query(
                Arc::new(CandidateSet::build(&objects, q, 0).unwrap()),
                Some(vec![q]),
                1,
            )
        };
        let mut cache = VerifyCache::new(CacheConfig::new(8, 0.0));
        // Entry at q = 0: horizon = far point of [1, 3] from 0 → 3.
        cache.insert(point_key_1d(0.0), 1, at(0.0));
        // Entry without coordinates: always dropped on region passes.
        cache.insert(
            point_key_1d(50.0),
            1,
            CachedQuery::new(Arc::new(CandidateSet::build(&objects, 50.0, 0).unwrap())),
        );
        // Far-away update region [100, 101]: mindist from q = 0 is 100 > 3,
        // so the coordinate-bearing entry survives; the bare one drops.
        cache.advance_version(1, &[Extent::new(vec![100.0], vec![101.0])]);
        assert_eq!(cache.version(), 1);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_some());
        assert!(cache.lookup(point_key_1d(50.0), 1).is_none());
        assert_eq!(cache.stats().region_evictions, 1);
        assert_eq!(cache.stats().invalidations, 0, "no full clear happened");
        // A region inside the horizon (mindist 1 ≤ 3) drops the entry.
        cache.advance_version(2, &[Extent::new(vec![-2.0], vec![-1.0])]);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_none());
        assert_eq!(cache.stats().region_evictions, 2);
        // Same version again: no-op. Backwards: full clear.
        cache.insert(point_key_1d(0.0), 1, at(0.0));
        cache.advance_version(2, &[Extent::new(vec![0.0], vec![1.0])]);
        assert!(cache.lookup(point_key_1d(0.0), 1).is_some());
        cache.advance_version(0, &[]);
        assert!(cache.is_empty());
    }
}
