//! Parallel batch execution of constrained queries.
//!
//! A production deployment of the paper's engine does not answer one query
//! at a time: location services and sensor dashboards issue thousands of
//! C-PNN queries against the same immutable snapshot. [`BatchExecutor`]
//! evaluates a batch concurrently with plain `std::thread` scoped workers
//! (no external runtime):
//!
//! * the database ([`DistanceModel`]) is shared by reference — queries are
//!   read-only, so no locking is needed on the data;
//! * workers pull query indices from a shared atomic counter
//!   (work-stealing by construction: short and long queries balance
//!   automatically, unlike static chunking);
//! * each worker owns a [`QueryScratch`], so the verification state and
//!   stage buffers are reused across the queries it executes instead of
//!   being reallocated per query;
//! * results come back in input order and are bitwise identical to a
//!   sequential run, whatever the thread count — each query's evaluation
//!   (including Monte-Carlo seeding) is deterministic and independent.
//!
//! [`BatchSummary`] aggregates the per-phase [`QueryStats`] the paper's
//! figures plot, plus wall-clock time and throughput for scaling studies
//! (`repro`'s `batch` experiment sweeps the thread count over a 10k-query
//! workload).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, SharedVerifyCache};
use crate::candidate::CandidateSet;
use crate::error::Result;
use crate::pipeline::{
    cpnn_with, evaluate_candidates, CpnnQuery, CpnnResult, DistanceModel, Filtered, PipelineConfig,
    QueryScratch, QuerySpec, QueryStats, Strategy,
};
use crate::shard::{ShardPoint, ShardableModel, ShardedDb};

/// Evaluates batches of constrained queries across worker threads.
///
/// ```
/// use cpnn_core::{
///     BatchExecutor, CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject,
/// };
///
/// let db = UncertainDb::build(vec![
///     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
///     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
/// ])
/// .unwrap();
/// let queries: Vec<CpnnQuery> =
///     (0..8).map(|i| CpnnQuery::new(i as f64, 0.3, 0.01)).collect();
/// let out = BatchExecutor::new(2).run_cpnn(
///     &db,
///     &queries,
///     Strategy::Verified,
///     &db.config().pipeline(),
/// );
/// assert_eq!(out.summary.queries, 8);
/// // Results are in input order and identical to a sequential run.
/// assert!(out.results.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// Executor with an explicit thread count; `0` means "one per available
    /// core".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `(query point, spec)` pairs against `model`. Results are in
    /// input order; per-query errors surface in their slot.
    pub fn run<M>(
        &self,
        model: &M,
        queries: &[(M::Query, QuerySpec)],
        cfg: &PipelineConfig,
    ) -> BatchOutcome
    where
        M: DistanceModel + Sync,
        M::Query: Sync,
    {
        self.run_indexed(model, queries.len(), cfg, |i| queries[i])
    }

    /// Evaluate many query points under one shared spec.
    pub fn run_uniform<M>(
        &self,
        model: &M,
        points: &[M::Query],
        spec: &QuerySpec,
        cfg: &PipelineConfig,
    ) -> BatchOutcome
    where
        M: DistanceModel + Sync,
        M::Query: Sync,
    {
        self.run_indexed(model, points.len(), cfg, |i| (points[i], *spec))
    }

    /// 1-D convenience: evaluate [`CpnnQuery`]s (point + threshold +
    /// tolerance) under one strategy against any `f64`-queried model.
    pub fn run_cpnn<M>(
        &self,
        model: &M,
        queries: &[CpnnQuery],
        strategy: Strategy,
        cfg: &PipelineConfig,
    ) -> BatchOutcome
    where
        M: DistanceModel<Query = f64> + Sync,
    {
        self.run_indexed(model, queries.len(), cfg, |i| {
            let q = queries[i];
            (q.q, QuerySpec::nn(q.threshold, q.tolerance, strategy))
        })
    }

    /// Shard-aware batch evaluation against a [`ShardedDb`].
    ///
    /// Work units are `(query, shard)` pairs — each unit filters one query
    /// against one overlapping shard — so worker threads steal across
    /// *shards* as well as queries: one enormous query fanned out over many
    /// shards parallelizes instead of pinning a single worker. The worker
    /// that deposits the last shard of a query merges the survivor sets
    /// (in the same ascending-mindist order the sequential fan-out uses)
    /// and runs the shared verify/refine flow once over the merged
    /// candidates ([`evaluate_candidates`]), so results are identical to a
    /// sequential [`crate::pipeline::cpnn`] against the same `ShardedDb` —
    /// and, by the fan-out equivalence, to an unsharded run.
    pub fn run_sharded<M>(
        &self,
        db: &ShardedDb<M>,
        jobs: &[(M::Query, QuerySpec)],
        cfg: &PipelineConfig,
    ) -> BatchOutcome
    where
        M: ShardableModel + Send + Sync,
        M::Query: ShardPoint + Sync,
        M::Config: Send + Sync,
    {
        // With the verification cache on, memoization wants the *merged*
        // filter output of a whole query — which per-(query, shard) work
        // units never materialize on one worker. Route whole queries
        // through the generic path instead (the `ShardedDb` is itself a
        // `DistanceModel` whose `filter` does the sequential fan-out), so
        // each worker's cache sees complete, reusable candidate sets.
        // Results are identical either way (fan-out equivalence,
        // `tests/proptest_shard.rs`); only the stealing granularity drops
        // from (query, shard) to query.
        if cfg.cache.is_enabled() {
            return self.run_indexed(db, jobs.len(), cfg, |i| jobs[i]);
        }
        struct Assembly {
            /// One slot per selected shard, in selection (merge) order.
            slots: Vec<Option<Result<(Filtered, Duration)>>>,
            remaining: usize,
        }
        /// Pre-flight plan for one query: its `(mindist, shard)` selection
        /// and any error caught before filtering.
        type Plan = (Vec<(f64, usize)>, Option<crate::error::CoreError>);

        let n = jobs.len();
        let wall_start = Instant::now();
        // Pre-flight (cheap, sequential): validate each query point and
        // spec before any filtering work, matching `cpnn_with`'s order,
        // then pick the shard set.
        let plans: Vec<Plan> = jobs
            .iter()
            .map(|(q, spec)| {
                let valid = db.check_query(q).and_then(|()| {
                    crate::classify::Classifier::new(spec.threshold, spec.tolerance).map(|_| ())
                });
                match valid {
                    Err(e) => (Vec::new(), Some(e)),
                    Ok(()) => (db.overlapping(q, spec.k.max(1)), None),
                }
            })
            .collect();
        // One unit per (query, shard); a query with no overlapping shards
        // (or a pre-flight error) gets a single merge-only unit so every
        // result slot resolves.
        let mut units: Vec<(usize, Option<usize>)> = Vec::new();
        for (qi, (selected, err)) in plans.iter().enumerate() {
            if err.is_some() || selected.is_empty() {
                units.push((qi, None));
            } else {
                units.extend((0..selected.len()).map(|pos| (qi, Some(pos))));
            }
        }
        let assemblies: Vec<Mutex<Assembly>> = plans
            .iter()
            .map(|(selected, _)| {
                let mut slots = Vec::new();
                slots.resize_with(selected.len(), || None);
                Mutex::new(Assembly {
                    slots,
                    remaining: selected.len(),
                })
            })
            .collect();

        // Merge the per-shard survivor sets of query `qi` and evaluate.
        let finish = |qi: usize,
                      slots: Vec<Option<Result<(Filtered, Duration)>>>,
                      scratch: &mut QueryScratch|
         -> Result<CpnnResult> {
            let (q_spec, err) = (&jobs[qi].1, &plans[qi].1);
            if let Some(e) = err {
                return Err(e.clone());
            }
            let mut items = Vec::new();
            let mut filter_time = Duration::ZERO;
            let mut shard_elapsed = Duration::ZERO;
            for slot in slots {
                let (filtered, elapsed) = slot.expect("every unit deposited its slot")?;
                filter_time += filtered.filter_time;
                shard_elapsed += elapsed;
                items.extend(filtered.items);
            }
            let assemble_start = Instant::now();
            let mut stats = QueryStats {
                total_objects: db.total_objects(),
                ..Default::default()
            };
            let cands = CandidateSet::from_distances(items, q_spec.k.max(1));
            stats.candidates = cands.len();
            stats.filter_time = filter_time.min(shard_elapsed);
            stats.init_time =
                shard_elapsed.saturating_sub(stats.filter_time) + assemble_start.elapsed();
            evaluate_candidates(&cands, q_spec, cfg, scratch, stats)
        };

        let threads = self.threads.min(units.len().max(1));
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<CpnnResult>)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = QueryScratch::new();
                    let mut local = Vec::new();
                    loop {
                        let u = next.fetch_add(1, Ordering::Relaxed);
                        if u >= units.len() {
                            break;
                        }
                        let (qi, pos) = units[u];
                        let Some(pos) = pos else {
                            // Merge-only unit: empty shard set or error.
                            local.push((qi, finish(qi, Vec::new(), &mut scratch)));
                            continue;
                        };
                        let (q, spec) = &jobs[qi];
                        let shard = plans[qi].0[pos].1;
                        let start = Instant::now();
                        let filtered = db.shard_model(shard).filter(q, spec.k.max(1));
                        let elapsed = start.elapsed();
                        let mut asm = assemblies[qi].lock().expect("no worker panics");
                        asm.slots[pos] = Some(filtered.map(|f| (f, elapsed)));
                        asm.remaining -= 1;
                        let done = asm.remaining == 0;
                        let slots = if done {
                            std::mem::take(&mut asm.slots)
                        } else {
                            Vec::new()
                        };
                        drop(asm);
                        if done {
                            // Last shard in: this worker owns the merge.
                            local.push((qi, finish(qi, slots, &mut scratch)));
                        }
                    }
                    collected.lock().expect("no worker panics").extend(local);
                });
            }
        });
        let mut slots: Vec<Option<Result<CpnnResult>>> = Vec::new();
        slots.resize_with(n, || None);
        for (i, r) in collected.into_inner().expect("no worker panics") {
            slots[i] = Some(r);
        }
        let results: Vec<Result<CpnnResult>> = slots
            .into_iter()
            .map(|s| s.expect("every query was merged by exactly one worker"))
            .collect();
        let wall_time = wall_start.elapsed();
        let summary = BatchSummary::aggregate(&results, threads, wall_time);
        BatchOutcome { results, summary }
    }

    fn run_indexed<M, F>(&self, model: &M, n: usize, cfg: &PipelineConfig, job: F) -> BatchOutcome
    where
        M: DistanceModel + Sync,
        F: Fn(usize) -> (M::Query, QuerySpec) + Sync,
    {
        let threads = self.threads.min(n.max(1));
        let wall_start = Instant::now();
        let mut cache_totals = CacheStats::default();
        // One shared L2 tier per batch run, attached to every worker's
        // scratch, so a hot point computed by one worker hits on all of
        // them (inert unless both cache knobs are enabled).
        let tier = (cfg.cache.is_enabled() && cfg.shared_cache.is_enabled())
            .then(|| Arc::new(SharedVerifyCache::new(cfg.shared_cache)));
        let results: Vec<Result<CpnnResult>> = if threads <= 1 {
            let mut scratch = QueryScratch::new();
            if let Some(tier) = tier.as_ref() {
                scratch.attach_shared(Arc::clone(tier));
            }
            let results = (0..n)
                .map(|i| {
                    let (q, spec) = job(i);
                    cpnn_with(model, &q, &spec, cfg, &mut scratch)
                })
                .collect();
            cache_totals.accumulate(&scratch.cache_stats());
            results
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Result<CpnnResult>)>> =
                Mutex::new(Vec::with_capacity(n));
            let cache_acc: Mutex<CacheStats> = Mutex::new(CacheStats::default());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut scratch = QueryScratch::new();
                        if let Some(tier) = tier.as_ref() {
                            scratch.attach_shared(Arc::clone(tier));
                        }
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (q, spec) = job(i);
                            local.push((i, cpnn_with(model, &q, &spec, cfg, &mut scratch)));
                        }
                        collected.lock().expect("no worker panics").extend(local);
                        cache_acc
                            .lock()
                            .expect("no worker panics")
                            .accumulate(&scratch.cache_stats());
                    });
                }
            });
            cache_totals = cache_acc.into_inner().expect("no worker panics");
            let mut slots: Vec<Option<Result<CpnnResult>>> = Vec::new();
            slots.resize_with(n, || None);
            for (i, r) in collected.into_inner().expect("no worker panics") {
                slots[i] = Some(r);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every index was claimed by exactly one worker"))
                .collect()
        };
        let wall_time = wall_start.elapsed();
        let mut summary = BatchSummary::aggregate(&results, threads, wall_time);
        summary.cache_hits = cache_totals.hits;
        summary.cache_misses = cache_totals.misses;
        summary.shared_hits = cache_totals.shared_hits;
        summary.outcome_hits = cache_totals.outcome_hits;
        BatchOutcome { results, summary }
    }
}

impl Default for BatchExecutor {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(0)
    }
}

/// Results plus aggregate statistics for one batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query results, in input order.
    pub results: Vec<Result<CpnnResult>>,
    /// Aggregated statistics.
    pub summary: BatchSummary,
}

/// Aggregated statistics over a batch (sums of the per-query
/// [`QueryStats`], wall-clock time, and derived throughput).
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// Queries submitted.
    pub queries: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall_time: Duration,
    /// Summed per-query time across all phases (CPU-time proxy; exceeds
    /// `wall_time` when scaling across cores).
    pub query_time: Duration,
    /// Summed filtering time.
    pub filter_time: Duration,
    /// Summed initialization time.
    pub init_time: Duration,
    /// Summed verification time.
    pub verify_time: Duration,
    /// Summed refinement time.
    pub refine_time: Duration,
    /// Summed candidate-set sizes.
    pub candidates: usize,
    /// Summed work counters (integrations / integrand evals / worlds).
    pub integrations: usize,
    /// Summed refined-object counts.
    pub refined_objects: usize,
    /// Queries fully resolved by verification alone.
    pub resolved_by_verification: usize,
    /// Total answers returned.
    pub answers: usize,
    /// Local (per-thread) verification-cache hits across all workers (0
    /// unless [`crate::PipelineConfig`]'s `cache` was enabled).
    pub cache_hits: u64,
    /// Verification-cache misses across all workers (neither tier had
    /// the entry).
    pub cache_misses: u64,
    /// Local misses answered by the shared L2 tier (0 unless
    /// `shared_cache` was enabled too), attributed to the worker that
    /// served the reply.
    pub shared_hits: u64,
    /// Entry hits that replayed a memoized verification outcome,
    /// skipping verify/refine entirely.
    pub outcome_hits: u64,
}

impl BatchSummary {
    fn aggregate(results: &[Result<CpnnResult>], threads: usize, wall_time: Duration) -> Self {
        let mut s = BatchSummary {
            queries: results.len(),
            threads,
            wall_time,
            ..Default::default()
        };
        for r in results {
            match r {
                Err(_) => s.errors += 1,
                Ok(res) => {
                    let st: &QueryStats = &res.stats;
                    s.query_time += st.total_time();
                    s.filter_time += st.filter_time;
                    s.init_time += st.init_time;
                    s.verify_time += st.verify_time;
                    s.refine_time += st.refine_time;
                    s.candidates += st.candidates;
                    s.integrations += st.integrations;
                    s.refined_objects += st.refined_objects;
                    if st.resolved_by_verification {
                        s.resolved_by_verification += 1;
                    }
                    s.answers += res.answers.len();
                }
            }
        }
        s
    }

    /// Queries per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }

    /// Verification-cache entry hits (either tier) per lookup in
    /// `[0, 1]` (0 when caching was off or no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.shared_hits + self.cache_misses;
        if lookups == 0 {
            return 0.0;
        }
        (self.cache_hits + self.shared_hits) as f64 / lookups as f64
    }

    /// Ratio of summed per-query time to wall time — approaches the thread
    /// count under perfect scaling.
    pub fn parallel_efficiency(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.query_time.as_secs_f64() / wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, UncertainDb};
    use crate::object::{ObjectId, UncertainObject};
    use crate::pipeline::Strategy;

    fn db(n: u64) -> UncertainDb {
        let objects: Vec<UncertainObject> = (0..n)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 100.0;
                UncertainObject::uniform(ObjectId(i), lo, lo + 3.0 + (i % 5) as f64).unwrap()
            })
            .collect();
        UncertainDb::build(objects).unwrap()
    }

    fn queries(n: usize) -> Vec<CpnnQuery> {
        (0..n)
            .map(|i| CpnnQuery::new((i as f64 * 13.7) % 110.0 - 5.0, 0.3, 0.01))
            .collect()
    }

    #[test]
    fn batch_equals_sequential_for_any_thread_count() {
        let db = db(60);
        let qs = queries(40);
        let cfg = EngineConfig::default().pipeline();
        let seq = BatchExecutor::new(1).run_cpnn(&db, &qs, Strategy::Verified, &cfg);
        for threads in [2, 3, 8] {
            let par = BatchExecutor::new(threads).run_cpnn(&db, &qs, Strategy::Verified, &cfg);
            assert_eq!(seq.results.len(), par.results.len());
            for (i, (a, b)) in seq.results.iter().zip(&par.results).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.answers, b.answers, "query {i}, {threads} threads");
                assert_eq!(a.reports.len(), b.reports.len());
                for (ra, rb) in a.reports.iter().zip(&b.reports) {
                    assert_eq!(ra.id, rb.id);
                    assert_eq!(ra.label, rb.label);
                    assert_eq!(ra.bound.lo(), rb.bound.lo());
                    assert_eq!(ra.bound.hi(), rb.bound.hi());
                }
            }
        }
    }

    #[test]
    fn summary_aggregates_and_counts_errors() {
        let db = db(30);
        let mut qs = queries(10);
        qs.push(CpnnQuery::new(f64::NAN, 0.3, 0.01));
        let cfg = EngineConfig::default().pipeline();
        let out = BatchExecutor::new(4).run_cpnn(&db, &qs, Strategy::Verified, &cfg);
        assert_eq!(out.summary.queries, 11);
        assert_eq!(out.summary.errors, 1);
        assert!(out.results[10].is_err());
        assert!(out.summary.candidates > 0);
        assert!(out.summary.wall_time > Duration::ZERO);
        assert!(out.summary.throughput() > 0.0);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let ex = BatchExecutor::new(0);
        assert!(ex.threads() >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = db(5);
        let cfg = EngineConfig::default().pipeline();
        let out = BatchExecutor::new(4).run_cpnn(&db, &[], Strategy::Verified, &cfg);
        assert!(out.results.is_empty());
        assert_eq!(out.summary.queries, 0);
    }

    #[test]
    fn sharded_batch_matches_sequential_and_unsharded() {
        let objs: Vec<UncertainObject> = (0..60)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 100.0;
                UncertainObject::uniform(ObjectId(i), lo, lo + 3.0 + (i % 5) as f64).unwrap()
            })
            .collect();
        let flat = UncertainDb::build(objs.clone()).unwrap();
        let cfg = EngineConfig::default().pipeline();
        let jobs: Vec<(f64, QuerySpec)> = (0..30)
            .map(|i| {
                let q = (i as f64 * 13.7) % 110.0 - 5.0;
                let spec = if i % 4 == 0 {
                    QuerySpec::knn(2, 0.4, 0.0, Strategy::Verified)
                } else {
                    QuerySpec::nn(0.3, 0.01, Strategy::Verified)
                };
                (q, spec)
            })
            .collect();
        let want = BatchExecutor::new(1).run(&flat, &jobs, &cfg);
        for shards in [1, 3, 8] {
            let db = UncertainDb::build_sharded(objs.clone(), shards).unwrap();
            for threads in [1, 4] {
                let got = BatchExecutor::new(threads).run_sharded(&db, &jobs, &cfg);
                assert_eq!(got.results.len(), want.results.len());
                for (i, (a, b)) in want.results.iter().zip(&got.results).enumerate() {
                    let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                    assert_eq!(a.answers, b.answers, "query {i}, {shards}x{threads}");
                    // `ObjectReport` derives `PartialEq`: ids, labels, and
                    // probability bounds all compare bit-for-bit.
                    assert_eq!(a.reports, b.reports, "query {i}, {shards}x{threads}");
                }
            }
        }
    }

    #[test]
    fn sharded_batch_reports_per_query_errors() {
        let objs: Vec<UncertainObject> = (0..20)
            .map(|i| UncertainObject::uniform(ObjectId(i), i as f64, i as f64 + 1.0).unwrap())
            .collect();
        let db = UncertainDb::build_sharded(objs, 4).unwrap();
        let cfg = EngineConfig::default().pipeline();
        let jobs: Vec<(f64, QuerySpec)> = vec![
            (5.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified)),
            (f64::NAN, QuerySpec::nn(0.3, 0.01, Strategy::Verified)),
            (7.0, QuerySpec::nn(0.0, 0.0, Strategy::Verified)), // invalid threshold
        ];
        let out = BatchExecutor::new(3).run_sharded(&db, &jobs, &cfg);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_err());
        assert!(out.results[2].is_err());
        assert_eq!(out.summary.errors, 2);
    }

    #[test]
    fn sharded_batch_on_empty_db_and_empty_jobs() {
        let db = UncertainDb::build_sharded(Vec::new(), 4).unwrap();
        let cfg = EngineConfig::default().pipeline();
        let out = BatchExecutor::new(2).run_sharded::<UncertainDb>(&db, &[], &cfg);
        assert!(out.results.is_empty());
        let jobs = vec![(0.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified))];
        let out = BatchExecutor::new(2).run_sharded(&db, &jobs, &cfg);
        assert!(out.results[0].as_ref().unwrap().answers.is_empty());
    }

    #[test]
    fn mixed_specs_run_through_the_generic_entry_point() {
        let db = db(30);
        let cfg = EngineConfig::default().pipeline();
        let jobs: Vec<(f64, QuerySpec)> = vec![
            (10.0, QuerySpec::nn(0.3, 0.0, Strategy::Basic)),
            (20.0, QuerySpec::nn(0.3, 0.0, Strategy::Verified)),
            (30.0, QuerySpec::knn(2, 0.5, 0.0, Strategy::Verified)),
        ];
        let out = BatchExecutor::new(2).run(&db, &jobs, &cfg);
        assert_eq!(out.results.len(), 3);
        assert!(out.results.iter().all(|r| r.is_ok()));
    }
}
