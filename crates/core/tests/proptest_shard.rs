//! Properties of the domain-partitioned [`ShardedDb`] on random
//! workloads — the correctness contract of the sharding layer:
//!
//! 1. **1-D equivalence** — at every tested shard count (1, 2, 3, 8), a
//!    sharded C-PNN query returns exactly the verdicts and probability
//!    bounds of the unsharded database (fan-out + merge ≡ flat filter);
//! 2. **k-NN equivalence** — same, for C-PkNN (`k > 1`), where the
//!    pruning horizon is the `k`-th smallest far point and shard
//!    selection must account for partially-filled candidate sets;
//! 3. **2-D equivalence** — same, over the disk/rectangle engine (bbox
//!    tiles instead of domain intervals);
//! 4. **batch equivalence** — the shard-aware batch executor
//!    (`(query, shard)` work units, cross-shard work stealing) matches
//!    sequential sharded and unsharded evaluation at any thread count;
//! 5. **per-shard snapshot atomicity** — under interleaved
//!    `insert`/`remove` (each rebuilding only the owning shard), every
//!    served response is consistent with exactly one snapshot version:
//!    re-evaluating against the recorded version reproduces it
//!    bit-for-bit, so per-shard swaps never tear.

use cpnn_core::pipeline::{cpnn, PipelineConfig, QuerySpec};
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    BatchExecutor, CpnnResult, Object2d, ObjectId, QueryServer, ShardedDb, Snapshot, UncertainDb,
    UncertainDb2d, UncertainObject,
};
use proptest::prelude::*;
use proptest::TestCaseError;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Random uniform-pdf 1-D objects with ids `0..n` on a bounded domain.
fn objects(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

/// Random 2-D objects: disks and axis-aligned rectangles, ids `0..n`.
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    prop::collection::vec(
        (-30.0f64..30.0, -30.0f64..30.0, 0.5f64..5.0, prop::bool::ANY),
        3..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r, disk))| {
                let id = ObjectId(i as u64);
                if disk {
                    Object2d::circle(id, [x, y], r).unwrap()
                } else {
                    Object2d::rectangle(id, [x - r, y - r * 0.7], [x + r, y + r * 0.7]).unwrap()
                }
            })
            .collect()
    })
}

fn spec() -> QuerySpec {
    QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified)
}

/// Bit-for-bit result comparison: answers plus every report (id, label,
/// and probability bounds — `ObjectReport` derives `PartialEq`).
fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: sharded ≡ unsharded for 1-D C-PNN at every shard count.
    #[test]
    fn sharded_equals_unsharded_1d(
        objs in objects(24),
        points in prop::collection::vec(-60.0f64..60.0, 1..16),
        threshold in 0.05f64..0.95,
    ) {
        let flat = UncertainDb::build(objs.clone()).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(threshold, 0.01, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            prop_assert_eq!(sharded.num_shards(), shards);
            prop_assert_eq!(sharded.len(), objs.len());
            for &q in &points {
                let want = cpnn(&flat, &q, &spec, &cfg).unwrap();
                let got = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                assert_same(&got, &want, &format!("q = {q}, {shards} shards, P = {threshold}"))?;
            }
        }
    }

    /// Property 2: sharded ≡ unsharded for C-PkNN (the k-NN horizon is
    /// the k-th smallest far point; shard selection must stay sound while
    /// fewer than k candidates have been collected).
    #[test]
    fn sharded_equals_unsharded_knn(
        objs in objects(20),
        points in prop::collection::vec(-60.0f64..60.0, 1..10),
        k in 2usize..5,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::knn(k, 0.4, 0.0, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            for &q in &points {
                let want = cpnn(&flat, &q, &spec, &cfg).unwrap();
                let got = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                assert_same(&got, &want, &format!("q = {q}, k = {k}, {shards} shards"))?;
            }
        }
    }

    /// Property 3: sharded ≡ unsharded over the 2-D engine (bbox tiles),
    /// for both 1-NN and k-NN specs.
    #[test]
    fn sharded_equals_unsharded_2d(
        objs in objects_2d(16),
        points in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 1..8),
        k in 1usize..4,
    ) {
        let flat = UncertainDb2d::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::knn(k, 0.3, 0.01, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            for &(x, y) in &points {
                let q = [x, y];
                let want = cpnn(&flat, &q, &spec, &cfg).unwrap();
                let got = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                assert_same(&got, &want, &format!("q = {q:?}, k = {k}, {shards} shards"))?;
            }
        }
    }

    /// Property 4: the shard-aware batch executor ((query, shard) work
    /// units) matches unsharded sequential evaluation at any thread count.
    #[test]
    fn sharded_batch_equals_unsharded_sequential(
        objs in objects(20),
        points in prop::collection::vec(-60.0f64..60.0, 1..14),
        threads in 1usize..5,
        shards in 1usize..9,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let jobs: Vec<(f64, QuerySpec)> = points.iter().map(|&q| (q, spec())).collect();
        let sharded = ShardedDb::from_model(&flat, shards).unwrap();
        let out = BatchExecutor::new(threads).run_sharded(&sharded, &jobs, &cfg);
        prop_assert_eq!(out.results.len(), points.len());
        for (i, (&q, got)) in points.iter().zip(&out.results).enumerate() {
            let want = cpnn(&flat, &q, &spec(), &cfg).unwrap();
            assert_same(
                got.as_ref().unwrap(),
                &want,
                &format!("query {i}, {shards} shards, T = {threads}"),
            )?;
        }
    }

    /// Property 5: per-shard snapshot swaps never tear. Every response
    /// under interleaved insert/remove cites one snapshot version, and
    /// re-evaluating against exactly that version reproduces the response.
    #[test]
    fn per_shard_snapshot_swaps_never_tear(
        objs in objects(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..20),
        threads in 1usize..5,
        shards in 1usize..9,
        update_stride in 1usize..4,
    ) {
        let base = objs.len() as u64;
        let db = ShardedDb::<UncertainDb>::build(objs, Default::default(), shards).unwrap();
        let cfg = PipelineConfig::default();
        let server = QueryServer::start(db, threads, cfg);

        let mut versions: Vec<Snapshot<ShardedDb<UncertainDb>>> = vec![server.snapshot()];
        let mut tickets = Vec::new();
        let mut inserted: u64 = 0;
        for (i, &q) in points.iter().enumerate() {
            tickets.push((q, server.submit(q, spec())));
            if i % update_stride == 0 {
                let snap = if i % (2 * update_stride) == 0 {
                    inserted += 1;
                    server
                        .insert(
                            UncertainObject::uniform(ObjectId(base + inserted), q - 1.0, q + 1.0)
                                .unwrap(),
                        )
                        .unwrap()
                } else {
                    server.remove(ObjectId(base + inserted)).unwrap()
                };
                versions.push(snap);
            }
        }
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let v = served.snapshot_version as usize;
            prop_assert!(v < versions.len(), "unknown version {}", v);
            prop_assert_eq!(versions[v].version, v as u64);
            let want = cpnn(&*versions[v].model, &q, &spec(), &cfg).unwrap();
            let got = served.result.unwrap();
            assert_same(&got, &want, &format!("query {i} at v{v}, T = {threads}, {shards} shards"))?;
        }
        // Every version is still internally consistent after the fact
        // (shard Arcs shared across versions were never mutated).
        for snap in &versions {
            let total: usize = snap.model.shard_sizes().iter().sum();
            prop_assert_eq!(total, snap.model.len());
        }
    }
}
