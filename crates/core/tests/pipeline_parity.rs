//! Parity properties for the unified pipeline, on random workloads:
//!
//! 1. the generic verify → refine pipeline (`EvalStrategy::Verified` and
//!    `EvalStrategy::RefineOnly`) returns exactly the answers and labels of the
//!    `EvalStrategy::Basic` exact evaluation in 1-D;
//! 2. 2-D circle and rectangle objects evaluated through the same pipeline
//!    agree with a from-scratch Monte-Carlo possible-worlds simulation
//!    within sampling tolerance;
//! 3. a batched run over N queries equals N sequential runs (answers and
//!    classifications), for every thread count tried.

use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    BatchExecutor, CpnnQuery, Label, Object2d, ObjectId, UncertainDb, UncertainDb2d,
    UncertainObject,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random mix of uniform and multi-bar histogram objects on [-50, 50].
fn objects_1d(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    let one = (
        -50.0f64..50.0,
        0.5f64..20.0,
        prop::collection::vec(0.05f64..1.0, 1..4),
    );
    prop::collection::vec(one, 2..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, width, bars))| {
                if bars.len() == 1 {
                    UncertainObject::uniform(ObjectId(i as u64), lo, lo + width).unwrap()
                } else {
                    let n = bars.len();
                    let edges: Vec<f64> =
                        (0..=n).map(|k| lo + width * k as f64 / n as f64).collect();
                    let pdf = cpnn_pdf::HistogramPdf::from_masses(edges, bars).unwrap();
                    UncertainObject::from_histogram(ObjectId(i as u64), pdf)
                }
            })
            .collect()
    })
}

/// Random mix of 2-D circles and rectangles around the origin.
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    let one = (
        -10.0f64..10.0,
        -10.0f64..10.0,
        0.4f64..3.0,
        0.4f64..4.0,
        0u32..2,
    );
    prop::collection::vec(one, 2..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, a, b, kind))| {
                let id = ObjectId(i as u64);
                if kind == 0 {
                    Object2d::circle(id, [x, y], a).unwrap()
                } else {
                    Object2d::rectangle(id, [x - a, y - b], [x + a, y + b]).unwrap()
                }
            })
            .collect()
    })
}

/// From-scratch Monte-Carlo PNN over 2-D objects: sample one concrete
/// position per object per world (uniform in its region), the closest
/// object wins the world.
fn monte_carlo_pnn_2d(objects: &[Object2d], q: [f64; 2], worlds: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wins = vec![0usize; objects.len()];
    for _ in 0..worlds {
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for (i, o) in objects.iter().enumerate() {
            let p = match o {
                Object2d::Circle(c) => {
                    // Polar sampling, uniform over the disk.
                    let r = c.radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                    [c.center[0] + r * theta.cos(), c.center[1] + r * theta.sin()]
                }
                Object2d::Rectangle { rect, .. } => [
                    rng.gen_range(rect.min[0]..rect.max[0]),
                    rng.gen_range(rect.min[1]..rect.max[1]),
                ],
            };
            let d2 = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
            if d2 < best_d2 {
                best_d2 = d2;
                best = i;
            }
        }
        wins[best] += 1;
    }
    wins.into_iter().map(|w| w as f64 / worlds as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unified pipeline == Basic exact evaluation: same answer sets AND the
    /// same per-object labels, away from the integrator's knife edge.
    #[test]
    fn unified_pipeline_matches_basic_exactly_1d(
        objects in objects_1d(12),
        q in -60.0f64..60.0,
        p in 0.05f64..0.95,
    ) {
        let db = UncertainDb::build(objects).unwrap();
        let query = CpnnQuery::new(q, p, 0.0);
        let basic = db.cpnn(&query, EvalStrategy::Basic).unwrap();
        // Skip cases where an exact probability sits within the Basic
        // integrator's tolerance of the threshold (label is then genuinely
        // ambiguous between evaluators).
        prop_assume!(basic
            .reports
            .iter()
            .all(|r| (r.bound.lo() - p).abs() > 1e-4));
        for strategy in [EvalStrategy::Verified, EvalStrategy::RefineOnly] {
            let unified = db.cpnn(&query, strategy).unwrap();
            prop_assert_eq!(&basic.answers, &unified.answers,
                "answers diverge under {:?}", strategy);
            prop_assert_eq!(basic.reports.len(), unified.reports.len());
            for (b, u) in basic.reports.iter().zip(&unified.reports) {
                prop_assert_eq!(b.id, u.id);
                prop_assert!(u.label != Label::Unknown, "pipeline left {:?} unknown", u.id);
                prop_assert_eq!(b.label, u.label,
                    "label diverges for {:?} under {:?}", b.id, strategy);
            }
        }
    }

    /// 2-D mixed circle/rectangle databases: pipeline probabilities agree
    /// with possible-worlds Monte-Carlo within sampling tolerance.
    #[test]
    fn pipeline_2d_agrees_with_monte_carlo(
        objects in objects_2d(6),
        qx in -12.0f64..12.0,
        qy in -12.0f64..12.0,
    ) {
        let q = [qx, qy];
        let db = UncertainDb2d::build(objects.clone()).unwrap();
        let exact = db.pnn(q).unwrap();
        let mc = monte_carlo_pnn_2d(&objects, q, 30_000, 0xC0FFEE);
        for (i, o) in objects.iter().enumerate() {
            let p_exact = exact
                .probabilities
                .iter()
                .find(|(id, _)| *id == o.id())
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            // 30k worlds: σ ≤ 0.003; allow discretization error on top
            // (48-bin distance histograms).
            prop_assert!(
                (p_exact - mc[i]).abs() < 0.02,
                "object {i}: pipeline {p_exact} vs MC {}", mc[i]
            );
        }
    }

    /// Batched == sequential, regardless of thread count.
    #[test]
    fn batch_equals_sequential_runs(
        objects in objects_1d(10),
        qs in prop::collection::vec(-60.0f64..60.0, 1..12),
        p in 0.05f64..0.95,
        threads in 1usize..9,
    ) {
        let db = UncertainDb::build(objects).unwrap();
        let queries: Vec<CpnnQuery> =
            qs.into_iter().map(|q| CpnnQuery::new(q, p, 0.01)).collect();
        let cfg = db.config().pipeline();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| db.cpnn(q, EvalStrategy::Verified).unwrap())
            .collect();
        let batched = BatchExecutor::new(threads)
            .run_cpnn(&db, &queries, EvalStrategy::Verified, &cfg);
        prop_assert_eq!(sequential.len(), batched.results.len());
        for (s, b) in sequential.iter().zip(&batched.results) {
            let b = b.as_ref().unwrap();
            prop_assert_eq!(&s.answers, &b.answers);
            for (rs, rb) in s.reports.iter().zip(&b.reports) {
                prop_assert_eq!(rs.id, rb.id);
                prop_assert_eq!(rs.label, rb.label);
                prop_assert_eq!(rs.bound.lo(), rb.bound.lo());
                prop_assert_eq!(rs.bound.hi(), rb.bound.hi());
            }
        }
    }
}
