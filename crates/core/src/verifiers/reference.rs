//! Retained naive/legacy verifier implementations.
//!
//! These are the pre-kernel scalar code paths, kept verbatim: per-element
//! `cdf_at`/`mass` accessor calls, a fresh factor `Vec` and
//! [`ExcludeOneProduct::new`] (two more `Vec`s) per subregion, and a fresh
//! Poisson-binomial DP per end-point. They exist for two reasons:
//!
//! 1. **Ground truth** — the kernel path must produce bit-identical
//!    verdicts and bounds; the parity proptests run both chains and compare
//!    `f64::to_bits`.
//! 2. **The `verify` micro-bench** — kernel vs. legacy throughput across
//!    |C| × M is measured by timing these against the kernel verifiers.
//!
//! Do not "optimize" this module; its value is being the unoptimized
//! baseline.

use crate::classify::Label;
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{ExcludeOneProduct, VerificationState, Verifier};

/// Legacy L-SR: allocates a factor vector once per apply and a fresh
/// exclude-one product per subregion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceLowerSubregion;

impl Verifier for ReferenceLowerSubregion {
    fn name(&self) -> &'static str {
        "L-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let mut factors = vec![0.0; n];
        for j in 0..l {
            let cj = table.count(j);
            if cj == 0 {
                continue;
            }
            for (k, f) in factors.iter_mut().enumerate() {
                *f = 1.0 - table.cdf_at(k, j);
            }
            let prod = ExcludeOneProduct::new(&factors);
            let inv_cj = 1.0 / cj as f64;
            for i in 0..n {
                if state.labels[i] != Label::Unknown || table.mass(i, j) <= MASS_EPS {
                    continue;
                }
                let q = (prod.excluding(i) * inv_cj).clamp(0.0, 1.0);
                let cell = &mut state.qij_lo[i * l + j];
                if q > *cell {
                    *cell = q;
                }
            }
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
            }
        }
    }
}

/// Legacy U-SR: collects a fresh factor vector and product per end-point.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceUpperSubregion;

impl Verifier for ReferenceUpperSubregion {
    fn name(&self) -> &'static str {
        "U-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let product_at = |j: usize| {
            let factors: Vec<f64> = (0..n).map(|k| 1.0 - table.cdf_at(k, j)).collect();
            ExcludeOneProduct::new(&factors)
        };
        let mut prod_cur = product_at(0);
        for j in 0..l {
            let prod_next = product_at(j + 1);
            for i in 0..n {
                if state.labels[i] != Label::Unknown || table.mass(i, j) <= MASS_EPS {
                    continue;
                }
                let q = 0.5 * (prod_next.excluding(i) + prod_cur.excluding(i));
                let lo = state.qij_lo[i * l + j];
                let cell = &mut state.qij_hi[i * l + j];
                if q < *cell {
                    *cell = q.clamp(lo, 1.0);
                }
            }
            prod_cur = prod_next;
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_upper(table, i);
            }
        }
    }
}

/// Legacy FL-SR.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceFarLowerSubregion;

impl Verifier for ReferenceFarLowerSubregion {
    fn name(&self) -> &'static str {
        "FL-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let mut factors = vec![0.0; n];
        for j in 0..l {
            for (m, f) in factors.iter_mut().enumerate() {
                *f = 1.0 - table.cdf_at(m, j + 1);
            }
            let prod = ExcludeOneProduct::new(&factors);
            for i in 0..n {
                if state.labels[i] != Label::Unknown || table.mass(i, j) <= MASS_EPS {
                    continue;
                }
                let q = prod.excluding(i).clamp(0.0, 1.0);
                let cell = &mut state.qij_lo[i * l + j];
                if q > *cell {
                    *cell = q;
                }
            }
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
            }
        }
    }
}

/// Legacy truncated Poisson-binomial state (fresh `Vec` per end-point).
#[derive(Debug, Clone)]
struct PbState {
    dp: Vec<f64>,
}

impl PbState {
    fn new(probs: &[f64], limit: usize) -> Self {
        let mut dp = vec![0.0; limit + 1];
        dp[0] = 1.0;
        for &p in probs {
            let p = p.clamp(0.0, 1.0);
            for c in (0..=limit).rev() {
                let come = if c > 0 { dp[c - 1] * p } else { 0.0 };
                dp[c] = dp[c] * (1.0 - p) + come;
            }
        }
        Self { dp }
    }

    fn tail_excluding(&self, probs: &[f64], i: usize) -> f64 {
        let p = probs[i].clamp(0.0, 1.0);
        if p > 0.999 {
            let rest: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &q)| q)
                .collect();
            return PbState::new(&rest, self.dp.len() - 1)
                .dp
                .iter()
                .sum::<f64>();
        }
        let q = 1.0 - p;
        let mut prev = 0.0;
        let mut tail = 0.0;
        for c in 0..self.dp.len() {
            let excl = ((self.dp[c] - p * prev) / q).clamp(0.0, 1.0);
            tail += excl;
            prev = excl;
        }
        tail.clamp(0.0, 1.0)
    }
}

/// Legacy k-NN subregion verifier: collects the cdf column into a fresh
/// `Vec` per end-point and builds a fresh DP state for each.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceKnnSubregion {
    k: usize,
}

impl ReferenceKnnSubregion {
    /// Verifier for the `k`-nearest-neighbor qualification (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }
}

impl Verifier for ReferenceKnnSubregion {
    fn name(&self) -> &'static str {
        "SR-k"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let k = self.k;
        if k >= n {
            for i in 0..n {
                if state.labels[i] != Label::Unknown {
                    continue;
                }
                for j in 0..l {
                    state.qij_lo[i * l + j] = 1.0;
                    state.qij_hi[i * l + j] = 1.0;
                }
                state.recompute_lower(table, i);
                state.recompute_upper(table, i);
            }
            return;
        }
        let limit = k - 1;
        let probs_at = |j: usize| -> Vec<f64> { (0..n).map(|m| table.cdf_at(m, j)).collect() };
        let mut probs_cur = probs_at(0);
        let mut state_cur = PbState::new(&probs_cur, limit);
        for j in 0..l {
            let probs_next = probs_at(j + 1);
            let state_next = PbState::new(&probs_next, limit);
            for i in 0..n {
                if state.labels[i] != Label::Unknown {
                    continue;
                }
                let lo = state_next.tail_excluding(&probs_next, i);
                let cell = &mut state.qij_lo[i * l + j];
                if lo > *cell {
                    *cell = lo;
                }
                let hi = state_cur.tail_excluding(&probs_cur, i);
                let cell = &mut state.qij_hi[i * l + j];
                if hi < *cell {
                    *cell = hi;
                }
            }
            probs_cur = probs_next;
            state_cur = state_next;
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
                state.recompute_upper(table, i);
            }
        }
    }
}

/// Legacy counterpart of [`crate::framework::default_verifiers`].
pub fn reference_verifiers() -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(crate::verifiers::RightmostSubregion),
        Box::new(ReferenceLowerSubregion),
        Box::new(ReferenceUpperSubregion),
    ]
}

/// Legacy counterpart of [`crate::framework::extended_verifiers`].
pub fn reference_extended_verifiers() -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(crate::verifiers::RightmostSubregion),
        Box::new(ReferenceLowerSubregion),
        Box::new(ReferenceFarLowerSubregion),
        Box::new(ReferenceUpperSubregion),
    ]
}

/// Legacy counterpart of [`crate::framework::knn_verifiers`].
pub fn reference_knn_verifiers(k: usize) -> Vec<Box<dyn Verifier>> {
    vec![
        Box::new(crate::verifiers::RightmostSubregion),
        Box::new(ReferenceKnnSubregion::new(k)),
    ]
}
