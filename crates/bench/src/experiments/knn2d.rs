//! 2-D k-NN experiment — beyond the paper: the C-PkNN extension over the
//! 2-D disk/rectangle engine (`pipeline::cpnn` with `k > 1` over
//! [`UncertainDb2d`]), the ROADMAP's previously bench-less workload.
//!
//! Sweeps the neighbor count `k` over a fixed synthetic 2-D dataset and a
//! fixed query workload, measuring throughput and the work profile
//! (candidates, subregions, verification-resolution rate). The k-ary
//! verifier chain (RS-k / L-SR-k / U-SR-k) does the heavy lifting; the
//! resolution-rate column is the 2-D analogue of Fig. 13.

use cpnn_core::{BatchExecutor, PipelineConfig, QuerySpec, Strategy, UncertainDb2d};
use cpnn_datagen::{objects_2d, query_points_2d, Synthetic2dConfig};

use crate::experiments::{DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Run the experiment. Columns: k, wall ms, throughput, average
/// candidates/subregions, and queries resolved by verification alone.
pub fn run(quick: bool) -> Table {
    let cfg2d = Synthetic2dConfig {
        count: if quick { 2_000 } else { 10_000 },
        ..Synthetic2dConfig::default()
    };
    let n_queries = if quick { 200 } else { 1_000 };
    let db = UncertainDb2d::build(objects_2d(0x2D5EED, cfg2d)).expect("valid generated data");
    let queries = query_points_2d(0x2D0BEE, n_queries, cfg2d.domain);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Knn2d",
        &format!(
            "2-D C-PkNN over {} disk/rectangle objects: k sweep on a \
             {n_queries}-query VR workload",
            db.len()
        ),
        &[
            "k",
            "wall (ms)",
            "queries/s",
            "avg cands",
            "avg subregions",
            "resolved by verify %",
        ],
    );
    table.note(format!(
        "P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, domain {}², {} thread(s)",
        cfg2d.domain, threads
    ));
    for k in [1usize, 2, 4, 8] {
        let spec = QuerySpec::knn(k, DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
        let out = BatchExecutor::new(threads).run_uniform(
            &db,
            &queries,
            &spec,
            &PipelineConfig::default(),
        );
        let s = &out.summary;
        assert_eq!(s.errors, 0, "benchmark queries are valid");
        let subregions: usize = out
            .results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.stats.subregions)
            .sum();
        table.push_row(vec![
            k.to_string(),
            format!("{:.1}", s.wall_time.as_secs_f64() * 1e3),
            format!("{:.0}", s.throughput()),
            format!("{:.1}", s.candidates as f64 / s.queries.max(1) as f64),
            format!("{:.1}", subregions as f64 / s.queries.max(1) as f64),
            format!(
                "{:.1}",
                100.0 * s.resolved_by_verification as f64 / s.queries.max(1) as f64
            ),
        ]);
    }
    table
}
