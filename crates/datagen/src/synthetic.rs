//! Synthetic datasets: size sweeps (Fig. 9) and Gaussian-pdf variants
//! (Fig. 14).

use cpnn_core::{ObjectId, UncertainObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for plain synthetic interval data.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of intervals.
    pub count: usize,
    /// Domain extent.
    pub domain: f64,
    /// Minimum interval length.
    pub min_length: f64,
    /// Maximum interval length.
    pub max_length: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            count: 5_000,
            domain: 10_000.0,
            min_length: 2.0,
            max_length: 40.0,
        }
    }
}

/// Uniformly scattered intervals with uniform pdfs — the synthetic datasets
/// of Fig. 9 ("synthetic data sets with different data set sizes").
pub fn uniform_intervals(seed: u64, cfg: SyntheticConfig) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cfg.count)
        .map(|i| {
            let len = rng.gen_range(cfg.min_length..cfg.max_length);
            let lo = rng.gen_range(0.0..(cfg.domain - len));
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + len)
                .expect("generated region is valid")
        })
        .collect()
}

/// Replace every object's pdf with the paper's Gaussian configuration
/// (mean at the region center, σ = width/6, `bars`-bar histogram) while
/// keeping the same geometry — exactly the Fig. 14 experiment, which reuses
/// the Long Beach regions with Gaussian uncertainty pdfs.
pub fn gaussian_variant(objects: &[UncertainObject], bars: usize) -> Vec<UncertainObject> {
    objects
        .iter()
        .map(|o| {
            let (lo, hi) = o.region();
            UncertainObject::gaussian(o.id(), lo, hi, bars).expect("region already validated")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpnn_pdf::Pdf;

    #[test]
    fn uniform_intervals_respect_config() {
        let cfg = SyntheticConfig {
            count: 300,
            domain: 1_000.0,
            min_length: 1.0,
            max_length: 10.0,
        };
        let data = uniform_intervals(5, cfg);
        assert_eq!(data.len(), 300);
        for o in &data {
            let (lo, hi) = o.region();
            let len = hi - lo;
            assert!((1.0..=10.0).contains(&len));
            assert!(lo >= 0.0 && hi <= 1_000.0);
        }
    }

    #[test]
    fn gaussian_variant_keeps_geometry_changes_pdf() {
        let data = uniform_intervals(5, SyntheticConfig::default());
        let gauss = gaussian_variant(&data[..50], 300);
        for (u, g) in data.iter().zip(&gauss) {
            assert_eq!(u.id(), g.id());
            let (ulo, uhi) = u.region();
            let (glo, ghi) = g.region();
            assert!((ulo - glo).abs() < 1e-9 && (uhi - ghi).abs() < 1e-9);
            assert_eq!(g.pdf().bar_count(), 300);
            // Mass is concentrated at the center for the Gaussian.
            let mid = 0.5 * (glo + ghi);
            let w = ghi - glo;
            assert!(
                g.pdf().mass_between(mid - w / 6.0, mid + w / 6.0) > 0.6,
                "object {}",
                g.id()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_intervals(9, SyntheticConfig::default());
        let b = uniform_intervals(9, SyntheticConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.region(), y.region());
        }
    }
}
