//! Building histogram pdfs from raw observations.
//!
//! This is how uncertainty pdfs arise in practice in the paper's motivating
//! applications: "Figure 1(b) shows the histogram of temperature values in
//! a geographical area observed in a week. The pdf, represented as a
//! histogram, is an arbitrary distribution between 10°C and 20°C." Sensor
//! readings come in as samples; the database stores their histogram.
//!
//! Two binning rules are provided:
//! * **equi-width** — fixed-width bins over the observed range (the paper's
//!   figure);
//! * **equi-depth** — bins chosen so each holds the same number of samples,
//!   which adapts resolution to density and often yields tighter subregion
//!   bounds for skewed data.

use crate::error::PdfError;
use crate::histogram::HistogramPdf;
use crate::Result;

/// Build an equi-width histogram pdf from raw samples.
///
/// The support is `[min, max]` of the samples (widened by a tiny epsilon
/// when all samples coincide, since an uncertainty region must have
/// positive width).
pub fn histogram_from_samples(samples: &[f64], bins: usize) -> Result<HistogramPdf> {
    if bins == 0 {
        return Err(PdfError::NonPositiveParameter {
            name: "bins",
            value: 0.0,
        });
    }
    if samples.is_empty() {
        return Err(PdfError::ZeroMass);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(PdfError::InvalidDensity {
            index: 0,
            value: f64::NAN,
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in samples {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo == hi {
        // Degenerate: widen to a minimal region around the point.
        let eps = lo.abs().max(1.0) * 1e-9;
        lo -= eps;
        hi += eps;
    }
    let w = (hi - lo) / bins as f64;
    let edges: Vec<f64> = (0..=bins)
        .map(|i| if i == bins { hi } else { lo + i as f64 * w })
        .collect();
    let mut masses = vec![0.0; bins];
    for &x in samples {
        let idx = (((x - lo) / w) as usize).min(bins - 1);
        masses[idx] += 1.0;
    }
    HistogramPdf::from_masses(edges, masses)
}

/// Build an equi-depth histogram pdf from raw samples: `bins` bins, each
/// holding (as nearly as possible) the same number of samples.
pub fn equi_depth_from_samples(samples: &[f64], bins: usize) -> Result<HistogramPdf> {
    if bins == 0 {
        return Err(PdfError::NonPositiveParameter {
            name: "bins",
            value: 0.0,
        });
    }
    if samples.len() < 2 {
        return Err(PdfError::ZeroMass);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(PdfError::InvalidDensity {
            index: 0,
            value: f64::NAN,
        });
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let bins = bins.min(n - 1).max(1);
    // Quantile edges; duplicates collapse (massive ties merge bins).
    let mut edges: Vec<f64> = Vec::with_capacity(bins + 1);
    let mut masses: Vec<f64> = Vec::new();
    edges.push(sorted[0]);
    let mut prev_idx = 0usize;
    for b in 1..=bins {
        let idx = if b == bins {
            n - 1
        } else {
            (b * (n - 1)) / bins
        };
        let edge = sorted[idx];
        if edge > *edges.last().expect("non-empty") {
            edges.push(edge);
            masses.push((idx - prev_idx) as f64);
            prev_idx = idx;
        }
    }
    if edges.len() < 2 {
        // All samples identical: fall back to the widened equi-width path.
        return histogram_from_samples(samples, 1);
    }
    HistogramPdf::from_masses(edges, masses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Pdf;

    #[test]
    fn equi_width_counts_samples() {
        // 10 samples in [0, 10): 6 in the left half, 4 in the right.
        let samples = [0.5, 1.0, 2.0, 3.0, 4.0, 4.9, 6.0, 7.0, 8.0, 10.0];
        let h = histogram_from_samples(&samples, 2).unwrap();
        assert_eq!(h.bar_count(), 2);
        assert!((h.mass_between(0.5, 5.25) - 0.6).abs() < 1e-12);
        assert!((h.cdf(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_sample_lands_in_last_bin() {
        let samples = [0.0, 1.0, 2.0, 3.0, 4.0];
        let h = histogram_from_samples(&samples, 4).unwrap();
        // The sample at the exact max must not be dropped.
        let total: f64 = h.bars().map(|(lo, hi, d)| d * (hi - lo)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_get_minimal_width() {
        let h = histogram_from_samples(&[5.0; 20], 4).unwrap();
        let (lo, hi) = h.support();
        assert!(lo < 5.0 && hi > 5.0);
        assert!(hi - lo < 1e-6);
    }

    #[test]
    fn empty_and_invalid_inputs_rejected() {
        assert!(histogram_from_samples(&[], 4).is_err());
        assert!(histogram_from_samples(&[1.0], 0).is_err());
        assert!(histogram_from_samples(&[1.0, f64::NAN], 2).is_err());
        assert!(equi_depth_from_samples(&[1.0], 4).is_err());
        assert!(equi_depth_from_samples(&[1.0, f64::INFINITY], 2).is_err());
    }

    #[test]
    fn equi_depth_balances_mass() {
        // Strongly skewed data: most mass near 0.
        let samples: Vec<f64> = (1..=1000).map(|i| (i as f64 / 1000.0).powi(4)).collect();
        let h = equi_depth_from_samples(&samples, 10).unwrap();
        // Each bin holds ≈ 10% of the mass.
        for (lo, hi, d) in h.bars() {
            let mass = d * (hi - lo);
            assert!((mass - 0.1).abs() < 0.02, "bin [{lo}, {hi}] mass {mass}");
        }
        // Bins near zero are much narrower than bins near one.
        let widths: Vec<f64> = h.bars().map(|(lo, hi, _)| hi - lo).collect();
        assert!(widths[0] < widths[widths.len() - 1] / 10.0);
    }

    #[test]
    fn equi_depth_handles_ties() {
        let mut samples = vec![1.0; 50];
        samples.extend(vec![2.0; 50]);
        let h = equi_depth_from_samples(&samples, 10).unwrap();
        // Duplicate quantile edges collapse; result is a valid pdf.
        assert!((h.cdf(h.support().1) - 1.0).abs() < 1e-12);
        assert!(h.bar_count() >= 1);
    }

    #[test]
    fn large_sample_histogram_approximates_source() {
        // Samples from a triangular-ish distribution via inverse cdf.
        let source = crate::UniformPdf::new(0.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..20_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 20_000.0;
                source.quantile(u).sqrt() // cdf x² → density 2x
            })
            .collect();
        let h = histogram_from_samples(&samples, 50).unwrap();
        // cdf(x) ≈ x² on [0, 1].
        for x in [0.2, 0.5, 0.8] {
            assert!((h.cdf(x) - x * x).abs() < 0.02, "x = {x}: {}", h.cdf(x));
        }
    }
}
