//! Synthetic analog of the Long Beach TIGER interval dataset.

use cpnn_core::{ObjectId, UncertainObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Long Beach analog generator.
#[derive(Debug, Clone, Copy)]
pub struct LongBeachConfig {
    /// Number of intervals (paper: 53,144).
    pub count: usize,
    /// Domain extent in x (paper: 10,000 units).
    pub domain: f64,
    /// Number of density clusters mimicking geographic clumping.
    pub clusters: usize,
    /// Fraction of intervals drawn from the uniform background rather than
    /// a cluster.
    pub background_fraction: f64,
    /// Median interval length (lengths are log-normal). Calibrated so that
    /// the average candidate-set size ≈ 96, the statistic the paper reports.
    pub median_length: f64,
    /// Log-normal shape parameter for lengths.
    pub length_sigma: f64,
}

impl Default for LongBeachConfig {
    fn default() -> Self {
        Self {
            count: 53_144,
            domain: 10_000.0,
            clusters: 24,
            background_fraction: 0.25,
            median_length: 12.0,
            length_sigma: 0.8,
        }
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to
/// `rand` alone).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate the analog dataset with the paper's defaults.
pub fn longbeach_analog(seed: u64) -> Vec<UncertainObject> {
    longbeach_with(seed, LongBeachConfig::default())
}

/// Generate with an explicit configuration (e.g. a different `count` for
/// the Fig. 9 size sweep).
pub fn longbeach_with(seed: u64, cfg: LongBeachConfig) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cluster centers and widths.
    let centers: Vec<(f64, f64)> = (0..cfg.clusters.max(1))
        .map(|_| {
            let c = rng.gen_range(0.0..cfg.domain);
            let w = rng.gen_range(0.01..0.06) * cfg.domain;
            (c, w)
        })
        .collect();
    let mut out = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        let center = if rng.gen::<f64>() < cfg.background_fraction {
            rng.gen_range(0.0..cfg.domain)
        } else {
            let (c, w) = centers[rng.gen_range(0..centers.len())];
            (c + w * normal(&mut rng)).rem_euclid(cfg.domain)
        };
        // Log-normal length, clamped to keep regions inside a sane range.
        let len = (cfg.median_length * (cfg.length_sigma * normal(&mut rng)).exp())
            .clamp(0.25, cfg.domain * 0.02);
        let lo = (center - 0.5 * len).clamp(0.0, cfg.domain - 0.25);
        let hi = (lo + len).min(cfg.domain);
        out.push(
            UncertainObject::uniform(ObjectId(i as u64), lo, hi)
                .expect("generated region is valid"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpnn_core::UncertainDb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn default_matches_paper_cardinality_and_domain() {
        let cfg = LongBeachConfig::default();
        let mut cfg_small = cfg;
        cfg_small.count = 2_000;
        let data = longbeach_with(1, cfg_small);
        assert_eq!(data.len(), 2_000);
        for o in &data {
            let (lo, hi) = o.region();
            assert!(lo >= 0.0 && hi <= cfg.domain && lo < hi);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = LongBeachConfig {
            count: 500,
            ..LongBeachConfig::default()
        };
        let a = longbeach_with(7, cfg);
        let b = longbeach_with(7, cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.region(), y.region());
        }
        let c = longbeach_with(8, cfg);
        assert!(a.iter().zip(&c).any(|(x, y)| x.region() != y.region()));
    }

    /// The calibration target: average candidate-set size near the paper's
    /// reported 96 (we accept a generous band — the shape of the
    /// experiments is insensitive to ±50%).
    #[test]
    fn candidate_set_size_is_calibrated() {
        let data = longbeach_analog(42);
        let db = UncertainDb::build(data).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        let mut total = 0usize;
        const QUERIES: usize = 30;
        for _ in 0..QUERIES {
            let q: f64 = rng.gen_range(0.0..10_000.0);
            let res = db.pnn(q).unwrap();
            total += res.stats.candidates;
        }
        let avg = total as f64 / QUERIES as f64;
        assert!(
            (48.0..192.0).contains(&avg),
            "average candidate set size {avg} out of calibration band"
        );
    }
}
